#include "net/shaping.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/args.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"

namespace privtopk::net {

namespace {

const obs::Labels kShapingLabels{{"transport", "shaping"}};

using Clock = std::chrono::steady_clock;
using FpMillis = std::chrono::duration<double, std::milli>;

[[noreturn]] void badClause(const std::string& clause,
                            const std::string& detail) {
  throw ConfigError("shape spec clause '" + clause + "': " + detail);
}

/// Whole-token unsigned parse; rejects empty text and trailing garbage so
/// "50x" is an error, not 50.
std::uint64_t parseU64Strict(const std::string& text,
                             const std::string& clause) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || text.empty()) {
    badClause(clause, "bad integer '" + text + "'");
  }
  return value;
}

/// Whole-token non-negative finite double parse.
double parseDoubleStrict(const std::string& text, const std::string& clause) {
  double value = 0.0;
  try {
    std::size_t pos = 0;
    value = std::stod(text, &pos);
    if (pos != text.size()) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    badClause(clause, "bad number '" + text + "'");
  }
  if (!std::isfinite(value) || value < 0.0) {
    badClause(clause, "bad number '" + text + "'");
  }
  return value;
}

/// Parses "F->T" or "*"; returns nullopt for "*".
std::optional<std::pair<NodeId, NodeId>> parseLink(const std::string& text,
                                                   const std::string& clause) {
  if (text == "*") return std::nullopt;
  const auto arrow = text.find("->");
  if (arrow == std::string::npos) {
    badClause(clause, "expected FROM->TO or * link, got '" + text + "'");
  }
  const auto from = parseU64Strict(text.substr(0, arrow), clause);
  const auto to = parseU64Strict(text.substr(arrow + 2), clause);
  return std::make_pair(static_cast<NodeId>(from), static_cast<NodeId>(to));
}

/// Minimal stable formatting: parse(format(x)) == x for the %.10g range we
/// emit, so ShapingSpec::toString round-trips.
std::string formatNum(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string linkLabel(const std::pair<NodeId, NodeId>& link) {
  return std::to_string(link.first) + "->" + std::to_string(link.second);
}

}  // namespace

const LinkShape* ShapingSpec::shapeFor(NodeId from, NodeId to) const {
  const auto it = links.find({from, to});
  if (it != links.end()) return &it->second;
  if (defaultShape.has_value()) return &*defaultShape;
  return nullptr;
}

LinkShape ShapingSpec::profile(const std::string& name) {
  // One-way latency / jitter loosely modeled on published inter-DC RTTs;
  // bandwidth in KiB/s (10 Gb/s, 1 Gb/s, 200 Mb/s, 50 Mb/s).
  if (name == "lan") return {0.2, 0.05, 1250000.0, 0.0, 0.0};
  if (name == "metro") return {2.0, 0.5, 125000.0, 0.0, 0.0};
  if (name == "cross-region") return {30.0, 5.0, 25000.0, 0.0, 0.0};
  if (name == "intercontinental") return {80.0, 20.0, 6250.0, 0.0, 0.0};
  throw ConfigError("shape spec: unknown profile '" + name +
                    "' (lan|metro|cross-region|intercontinental)");
}

ShapingSpec ShapingSpec::parse(const std::string& text) {
  ShapingSpec spec;
  std::string normalized = text;
  std::replace(normalized.begin(), normalized.end(), ';', ',');
  for (const std::string& clause : splitString(normalized, ',')) {
    if (clause.empty()) continue;
    const auto colon = clause.find(':');
    if (colon == std::string::npos) {
      badClause(clause, "expected kind:args");
    }
    const std::string kind = clause.substr(0, colon);
    const std::string rest = clause.substr(colon + 1);
    if (kind == "seed") {
      spec.seed = parseU64Strict(rest, clause);
      continue;
    }
    if (kind == "queue") {
      spec.maxQueued = static_cast<std::size_t>(parseU64Strict(rest, clause));
      if (spec.maxQueued == 0) badClause(clause, "queue bound must be > 0");
      continue;
    }
    const auto linkColon = rest.find(':');
    if (linkColon == std::string::npos) {
      badClause(clause, "expected " + kind + ":LINK:args");
    }
    const auto link = parseLink(rest.substr(0, linkColon), clause);
    const std::string args = rest.substr(linkColon + 1);
    if (!link.has_value() && !spec.defaultShape.has_value()) {
      spec.defaultShape.emplace();
    }
    LinkShape& shape =
        link.has_value() ? spec.links[*link] : *spec.defaultShape;
    if (kind == "profile") {
      shape = profile(args);
    } else if (kind == "lat") {
      const auto tilde = args.find('~');
      if (tilde == std::string::npos) {
        shape.latencyMs = parseDoubleStrict(args, clause);
        shape.jitterMs = 0.0;
      } else {
        shape.latencyMs = parseDoubleStrict(args.substr(0, tilde), clause);
        shape.jitterMs = parseDoubleStrict(args.substr(tilde + 1), clause);
      }
    } else if (kind == "bw") {
      shape.kbytesPerSec = parseDoubleStrict(args, clause);
    } else if (kind == "reorder") {
      const auto sep = args.find(':');
      if (sep == std::string::npos) {
        badClause(clause, "expected reorder:LINK:PROB:WINDOW_MS");
      }
      shape.reorderProb = parseDoubleStrict(args.substr(0, sep), clause);
      if (shape.reorderProb > 1.0) {
        badClause(clause, "reorder probability must be in [0,1]");
      }
      shape.reorderWindowMs = parseDoubleStrict(args.substr(sep + 1), clause);
    } else {
      badClause(clause, "unknown kind '" + kind +
                            "' (profile|lat|bw|reorder|seed|queue)");
    }
  }
  return spec;
}

std::string ShapingSpec::toString() const {
  std::vector<std::string> parts;
  const auto emit = [&parts](const std::string& label, const LinkShape& s) {
    std::string lat = "lat:" + label + ":" + formatNum(s.latencyMs);
    if (s.jitterMs > 0.0) lat += "~" + formatNum(s.jitterMs);
    parts.push_back(std::move(lat));
    if (s.kbytesPerSec > 0.0) {
      parts.push_back("bw:" + label + ":" + formatNum(s.kbytesPerSec));
    }
    if (s.reorderProb > 0.0) {
      parts.push_back("reorder:" + label + ":" + formatNum(s.reorderProb) +
                      ":" + formatNum(s.reorderWindowMs));
    }
  };
  if (defaultShape.has_value()) emit("*", *defaultShape);
  for (const auto& [link, shape] : links) emit(linkLabel(link), shape);
  if (seed != kDefaultSeed) parts.push_back("seed:" + std::to_string(seed));
  if (maxQueued != kDefaultMaxQueued) {
    parts.push_back("queue:" + std::to_string(maxQueued));
  }
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += ",";
    out += parts[i];
  }
  return out;
}

ShapingState::ShapingState(ShapingSpec spec) : spec_(std::move(spec)) {}

ShapingState::SendPlan ShapingState::planSend(NodeId from, NodeId to,
                                              std::size_t bytes,
                                              Clock::time_point now) {
  std::scoped_lock lock(mutex_);
  SendPlan plan;
  const LinkShape* shape = spec_.shapeFor(from, to);
  if (shape == nullptr || shape->passthrough()) return plan;
  plan.shaped = true;
  ++messagesShaped_;

  const auto key = std::make_pair(from, to);
  const std::uint64_t nth = ++linkSendCount_[key];

  // Counter-derived stream: the draws for message n on this link are a pure
  // function of (seed, from, to, n), independent of thread interleaving.
  const std::uint64_t linkTag =
      splitmix64((static_cast<std::uint64_t>(from) << 32) ^
                 static_cast<std::uint64_t>(to));
  Rng rng(splitmix64(spec_.seed ^ linkTag) ^ splitmix64(nth));
  const double jitter =
      shape->jitterMs > 0.0 ? rng.uniform01() * shape->jitterMs : 0.0;
  plan.displaced = rng.bernoulli(shape->reorderProb);

  // Byte-accurate serialization: the link is a pipe that transmits at
  // kbytesPerSec; back-to-back messages queue behind each other.
  Clock::time_point base = now;
  if (shape->kbytesPerSec > 0.0) {
    auto& busyUntil = linkBusyUntil_[key];
    const Clock::time_point start = std::max(now, busyUntil);
    const double txMs =
        (static_cast<double>(bytes) / 1024.0) / shape->kbytesPerSec * 1000.0;
    busyUntil = start + std::chrono::duration_cast<Clock::duration>(
                            FpMillis(txMs));
    base = busyUntil;
  }
  plan.deliverAt = base + std::chrono::duration_cast<Clock::duration>(
                             FpMillis(shape->latencyMs + jitter));
  if (plan.displaced) {
    ++messagesDisplaced_;
    // Displaced messages take the long way round: extra window delay and no
    // FIFO clamp, so later messages on the link overtake them.
    plan.deliverAt += std::chrono::duration_cast<Clock::duration>(
        FpMillis(shape->reorderWindowMs));
  } else {
    auto& last = linkLastDeliverAt_[key];
    plan.deliverAt = std::max(plan.deliverAt, last);
    last = plan.deliverAt;
  }
  return plan;
}

std::size_t ShapingState::messagesShaped() const {
  std::scoped_lock lock(mutex_);
  return messagesShaped_;
}

std::size_t ShapingState::messagesDisplaced() const {
  std::scoped_lock lock(mutex_);
  return messagesDisplaced_;
}

ShapingTransport::ShapingTransport(Transport& inner, ShapingSpec spec)
    : ShapingTransport(inner,
                       std::make_shared<ShapingState>(std::move(spec))) {}

ShapingTransport::ShapingTransport(Transport& inner,
                                   std::shared_ptr<ShapingState> state)
    : inner_(&inner), state_(std::move(state)),
      metricShaped_(
          obs::counter("privtopk.transport.shaped_messages", kShapingLabels)),
      metricDelayMsTotal_(obs::counter("privtopk.transport.shaped_delay_ms",
                                       kShapingLabels)),
      metricReordered_(
          obs::counter("privtopk.transport.shaped_reordered", kShapingLabels)),
      metricDropped_(
          obs::counter("privtopk.transport.shaped_dropped", kShapingLabels)),
      metricSheds_(
          obs::counter("privtopk.transport.shaped_sheds", kShapingLabels)) {
  delivery_ = std::thread([this] { deliveryLoop(); });
}

ShapingTransport::~ShapingTransport() { stopDelivery(); }

void ShapingTransport::send(NodeId from, NodeId to, const Bytes& payload) {
  const auto now = Clock::now();
  const auto plan = state_->planSend(from, to, payload.size(), now);
  if (!plan.shaped) {
    // Unshaped link: inline, so inner backpressure/errors reach the sender.
    inner_->send(from, to, payload);
    return;
  }
  metricShaped_.inc();
  metricDelayMsTotal_.inc(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(plan.deliverAt -
                                                            now)
          .count()));
  if (plan.displaced) metricReordered_.inc();
  std::scoped_lock lock(queueMutex_);
  if (shutdown_) {
    throw TransportError("shaping: transport is shut down");
  }
  if (queue_.size() >= state_->spec().maxQueued) {
    metricSheds_.inc();
    const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
        queue_.top().deliverAt - now);
    throw OverloadError(
        "shaping: delivery queue full (" +
            std::to_string(state_->spec().maxQueued) + " pending)",
        std::max(wait, std::chrono::milliseconds(1)));
  }
  queue_.push(Pending{plan.deliverAt, nextSeq_++, Envelope{from, to, payload}});
  queueCv_.notify_all();
}

std::optional<Envelope> ShapingTransport::receive(
    NodeId node, std::chrono::milliseconds timeout) {
  return inner_->receive(node, timeout);
}

void ShapingTransport::shutdown() {
  stopDelivery();
  inner_->shutdown();
}

void ShapingTransport::stopDelivery() {
  {
    std::scoped_lock lock(queueMutex_);
    shutdown_ = true;
    queueCv_.notify_all();
  }
  if (delivery_.joinable()) delivery_.join();
}

std::size_t ShapingTransport::queuedMessages() const {
  std::scoped_lock lock(queueMutex_);
  return queue_.size();
}

std::size_t ShapingTransport::deliveryDrops() const {
  std::scoped_lock lock(queueMutex_);
  return deliveryDrops_;
}

void ShapingTransport::deliveryLoop() {
  std::unique_lock lock(queueMutex_);
  while (true) {
    if (shutdown_) return;  // pending messages are dropped: in-flight loss
    if (queue_.empty()) {
      queueCv_.wait(lock,
                    [this] { return shutdown_ || !queue_.empty(); });
      continue;
    }
    const auto due = queue_.top().deliverAt;
    if (Clock::now() < due) {
      // Wake early if shutdown arrives or an earlier message is queued.
      queueCv_.wait_until(lock, due, [this, due] {
        return shutdown_ || (!queue_.empty() && queue_.top().deliverAt < due);
      });
      continue;
    }
    Pending next = queue_.top();
    queue_.pop();
    lock.unlock();
    // Deliver outside the lock; senders keep enqueueing meanwhile.  Retry
    // in place on inner overload — re-queueing would let a later message on
    // the same link overtake and break FIFO.  This head-of-line blocks
    // other links while the inner is saturated, which is the modeled
    // behavior of a congested egress.
    while (true) {
      try {
        inner_->send(next.env.from, next.env.to, next.env.payload);
        break;
      } catch (const OverloadError& e) {
        const auto backoff =
            std::clamp(e.retryAfter(), std::chrono::milliseconds(1),
                       std::chrono::milliseconds(5));
        std::unique_lock retryLock(queueMutex_);
        if (shutdown_) return;
        queueCv_.wait_for(retryLock, backoff, [this] { return shutdown_; });
        if (shutdown_) return;
      } catch (const TransportError&) {
        // Link died while the message was in flight: the message is lost,
        // exactly like a real WAN; retransmission recovers it.
        metricDropped_.inc();
        PRIVTOPK_LOG_WARN_C("shaping", "dropping in-flight message ",
                            next.env.from, " -> ", next.env.to);
        std::scoped_lock dropLock(queueMutex_);
        ++deliveryDrops_;
        break;
      }
    }
    lock.lock();
  }
}

}  // namespace privtopk::net
