// Network-condition shaping for transports: a decorator that wraps any
// Transport and models wide-area links — per-link one-way latency with
// jitter, bandwidth caps with byte-accurate serialization delay, and
// optional reordering windows.  Complements net::FaultInjectingTransport
// (which models failures); the two compose freely.  Exposed on the CLI via
// --shape-spec (see docs/ROBUSTNESS.md, "WAN realism").
//
// Determinism contract: every random draw (jitter, reorder displacement)
// for the nth message on a link is a pure function of
// (spec seed, from, to, n) — counter-derived, never wall-clock — so the
// *decisions* are bit-reproducible at any thread count.  Actual delivery
// timestamps additionally depend on when the sender handed the message
// over (bandwidth occupancy accrues in real time), which is inherently
// scheduling-dependent; protocol results must therefore never depend on
// absolute shaped timing, only on ordering, which is preserved per link
// for non-displaced messages.
//
// Delivery model: send() never sleeps.  Shaped messages are timestamped
// and handed to a background delivery thread that releases them into the
// inner transport at their due time, preserving per-link FIFO order
// (displaced messages opt out of the FIFO clamp — that is the reordering).
// Backpressure is a bounded pending queue: when full, send() throws
// OverloadError with a retry-after hint.  Inner-transport OverloadError at
// delivery time is retried with backoff (the message was already accepted);
// inner TransportError at delivery time drops the message, modeling a loss
// in flight — recovered by the service retransmission layer.
//
// Deployment model mirrors fault.hpp: in-process fleets share one wrapper;
// TCP fleets run one wrapper per node around a SHARED ShapingState so
// per-link counters and stats aggregate fleet-wide.

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace privtopk::net {

/// Shape of one directed link.  All-zero = passthrough.
struct LinkShape {
  double latencyMs = 0.0;       ///< fixed one-way latency
  double jitterMs = 0.0;        ///< uniform extra latency in [0, jitterMs)
  double kbytesPerSec = 0.0;    ///< bandwidth cap (KiB/s); 0 = uncapped
  double reorderProb = 0.0;     ///< probability a message is displaced
  double reorderWindowMs = 0.0; ///< extra delay applied to displaced msgs

  [[nodiscard]] bool passthrough() const {
    return latencyMs <= 0.0 && jitterMs <= 0.0 && kbytesPerSec <= 0.0 &&
           reorderProb <= 0.0;
  }
};

/// Declarative link-shaping schedule, parsed from --shape-spec.
struct ShapingSpec {
  static constexpr std::uint64_t kDefaultSeed = 0x5a17ULL;
  static constexpr std::size_t kDefaultMaxQueued = 4096;

  /// Shape applied to links without a per-link entry ("*" clauses).
  std::optional<LinkShape> defaultShape;
  /// Per-link overrides.  An entry fully replaces the default for its link
  /// (per-link clauses start from an all-zero shape, not from the default).
  std::map<std::pair<NodeId, NodeId>, LinkShape> links;
  /// Root seed for the counter-derived jitter/reorder draws.
  std::uint64_t seed = kDefaultSeed;
  /// Bound on messages pending in the delivery queue before send() sheds
  /// with OverloadError.
  std::size_t maxQueued = kDefaultMaxQueued;

  [[nodiscard]] bool empty() const {
    return !defaultShape.has_value() && links.empty();
  }

  /// Effective shape for a link: exact entry, else the default, else null.
  [[nodiscard]] const LinkShape* shapeFor(NodeId from, NodeId to) const;

  /// Named geo profile (lan | metro | cross-region | intercontinental).
  /// Throws ConfigError naming the offending token on an unknown name.
  static LinkShape profile(const std::string& name);

  /// Parses a comma/semicolon-separated clause list, e.g.
  ///   "profile:*:metro,lat:0->1:30~5,bw:0->1:25000,reorder:2->3:0.01:40"
  ///   profile:LINK:NAME   apply a named geo profile to LINK
  ///   lat:LINK:MS[~JIT]   one-way latency MS ms, uniform jitter [0,JIT)
  ///   bw:LINK:KBPS        bandwidth cap in KiB/s (0 clears the cap)
  ///   reorder:LINK:P:WMS  displace msgs with prob P by an extra WMS ms
  ///   seed:N              root seed for the deterministic draws
  ///   queue:N             pending-delivery bound (OverloadError when full)
  /// where LINK is FROM->TO or "*" (the default for unlisted links).
  /// Throws ConfigError naming the offending token on malformed input.
  /// Empty string = no shaping.
  static ShapingSpec parse(const std::string& text);

  /// Canonical spec string; parse(toString()) reproduces the spec exactly.
  [[nodiscard]] std::string toString() const;
};

/// Per-link bookkeeping shared by every wrapper of one logical fleet.
class ShapingState {
 public:
  explicit ShapingState(ShapingSpec spec);

  /// Delivery decision for one message.
  struct SendPlan {
    bool shaped = false;     ///< false: deliver inline through the inner
    bool displaced = false;  ///< true: reordered out of FIFO order
    std::chrono::steady_clock::time_point deliverAt{};
  };

  /// Plans the next message on `from`->`to`: advances the per-link counter,
  /// derives jitter/displacement from (seed, link, counter), and accrues
  /// byte-accurate serialization delay against the link's bandwidth cap.
  SendPlan planSend(NodeId from, NodeId to, std::size_t bytes,
                    std::chrono::steady_clock::time_point now);

  [[nodiscard]] const ShapingSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t messagesShaped() const;
  [[nodiscard]] std::size_t messagesDisplaced() const;

 private:
  mutable std::mutex mutex_;
  ShapingSpec spec_;
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> linkSendCount_;
  std::map<std::pair<NodeId, NodeId>, std::chrono::steady_clock::time_point>
      linkBusyUntil_;
  std::map<std::pair<NodeId, NodeId>, std::chrono::steady_clock::time_point>
      linkLastDeliverAt_;
  std::size_t messagesShaped_ = 0;
  std::size_t messagesDisplaced_ = 0;
};

class ShapingTransport final : public Transport {
 public:
  /// Standalone wrapper with its own shaping state (in-process fleets).
  ShapingTransport(Transport& inner, ShapingSpec spec);

  /// Wrapper sharing `state` with sibling wrappers (one-transport-per-node
  /// TCP fleets).
  ShapingTransport(Transport& inner, std::shared_ptr<ShapingState> state);

  ~ShapingTransport() override;

  void send(NodeId from, NodeId to, const Bytes& payload) override;
  [[nodiscard]] std::optional<Envelope> receive(
      NodeId node, std::chrono::milliseconds timeout) override;
  void shutdown() override;

  [[nodiscard]] const std::shared_ptr<ShapingState>& state() const {
    return state_;
  }
  /// Messages currently waiting in the delivery queue.
  [[nodiscard]] std::size_t queuedMessages() const;
  /// Messages dropped because the inner transport failed at delivery time.
  [[nodiscard]] std::size_t deliveryDrops() const;

 private:
  struct Pending {
    std::chrono::steady_clock::time_point deliverAt;
    std::uint64_t seq = 0;
    Envelope env;
  };
  struct PendingLater {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.deliverAt != b.deliverAt) return a.deliverAt > b.deliverAt;
      return a.seq > b.seq;
    }
  };

  void deliveryLoop();
  void stopDelivery();

  Transport* inner_;
  std::shared_ptr<ShapingState> state_;

  mutable std::mutex queueMutex_;
  std::condition_variable queueCv_;
  std::priority_queue<Pending, std::vector<Pending>, PendingLater> queue_;
  std::uint64_t nextSeq_ = 0;
  std::size_t deliveryDrops_ = 0;
  bool shutdown_ = false;
  std::thread delivery_;

  obs::Counter& metricShaped_;
  obs::Counter& metricDelayMsTotal_;
  obs::Counter& metricReordered_;
  obs::Counter& metricDropped_;
  obs::Counter& metricSheds_;
};

}  // namespace privtopk::net
