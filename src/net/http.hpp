// Minimal embedded HTTP/1.0 server for observability endpoints.
//
// Deliberately tiny: GET-only, loopback-only (via net::makeListener),
// Connection: close, one accept-loop thread serving requests inline with
// short socket timeouts.  That is the right shape for a scrape target
// (/metrics, /healthz, /queries, /trace/<id>) - a handful of requests per
// second from curl or Prometheus - and keeps the query path completely
// decoupled: a slow scraper can stall at most the scrape thread.
//
// httpGet() is the matching client, used by `privtopk trace-view` to pull
// span dumps off live nodes and by tests.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>

namespace privtopk::net {

struct HttpRequest {
  std::string method;  // "GET"
  std::string target;  // path as sent, e.g. "/trace/42"
};

struct HttpResponse {
  int status = 200;
  std::string contentType = "text/plain; charset=utf-8";
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts serving.  Throws
  /// TransportError when the port cannot be bound.
  HttpServer(std::uint16_t port, HttpHandler handler);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Stops accepting and joins the serve thread.  Idempotent.
  void stop();

 private:
  void serveLoop();
  void serveConnection(int fd);

  HttpHandler handler_;
  std::uint16_t port_ = 0;
  std::atomic<int> listenFd_{-1};
  std::atomic<bool> stopped_{false};
  std::thread thread_;
};

/// One-shot GET against a loopback server.  Returns the body on HTTP 200,
/// nullopt on connect failure, timeout, or any other status.
std::optional<std::string> httpGet(
    const std::string& host, std::uint16_t port, const std::string& target,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(2000));

}  // namespace privtopk::net
