// Epoll reactor: one thread multiplexing socket readiness, deadline timers
// and cross-thread tasks for a whole transport.  This is the concurrency
// foundation of net::TcpTransport (see docs/ROBUSTNESS.md): a node runs
// O(1) network threads regardless of how many links it maintains, instead
// of one blocking reader thread per accepted connection.
//
// Threading contract:
//   * Fd handlers, timer callbacks and posted tasks all run on the single
//     loop thread, so the state they touch needs no locking among
//     themselves.
//   * add()/modify()/remove() and runAt()/runAfter()/cancel() may be
//     called from the loop thread, or from any thread BEFORE start() (for
//     pre-registration during construction).  Other threads communicate
//     with the loop exclusively via post(), which wakes it through an
//     eventfd.
//   * stop() joins the loop thread; once it returns no callback will ever
//     run again, so the caller may tear shared state down single-threaded.
//     Tasks posted after (or racing with) stop() are silently dropped.
//
// Fd-generation safety: events are dispatched through a (fd, generation)
// pair so that a handler that closes fd N and a fresh registration reusing
// descriptor N within the same epoll batch cannot receive each other's
// stale readiness events.

#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace privtopk::net {

class Reactor {
 public:
  /// Receives the raw epoll event mask (EPOLLIN/EPOLLOUT/EPOLLERR/...).
  using FdHandler = std::function<void(std::uint32_t events)>;
  using Task = std::function<void()>;
  using TimerId = std::uint64_t;
  using Clock = std::chrono::steady_clock;

  /// Creates the epoll instance and wakeup eventfd; throws TransportError
  /// when either kernel object cannot be created.  Call start() to run.
  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawns the loop thread.  Must be called at most once.
  void start();

  /// Wakes and joins the loop thread (idempotent).  Pending tasks and
  /// timers are discarded; registered fds are left open for the caller.
  void stop();

  /// Registers `fd` for `events`; `handler` runs on the loop thread each
  /// time the fd is ready.  Loop thread (or pre-start) only.
  void add(int fd, std::uint32_t events, FdHandler handler);

  /// Changes the event mask of a registered fd.  Loop thread only.
  void modify(int fd, std::uint32_t events);

  /// Deregisters `fd` (the fd itself stays open).  Safe to call for fds
  /// that were never registered.  Loop thread (or post-stop) only.
  void remove(int fd);

  /// Schedules `task` at `when` (runAfter: now + delay).  Returns an id
  /// for cancel().  Loop thread (or pre-start) only.
  TimerId runAt(Clock::time_point when, Task task);
  TimerId runAfter(std::chrono::milliseconds delay, Task task);

  /// Cancels a pending timer; no-op when it already fired or never existed.
  void cancel(TimerId id);

  /// Enqueues `task` to run on the loop thread and wakes it.  Thread-safe;
  /// dropped when the loop has stopped.
  void post(Task task);

  /// True when the calling thread is the loop thread.
  [[nodiscard]] bool onLoopThread() const;

  /// True once start() was called and stop() has not completed.
  [[nodiscard]] bool running() const { return running_.load(); }

 private:
  struct FdEntry {
    std::uint32_t generation = 0;
    FdHandler handler;
  };
  struct TimerEntry {
    TimerId id = 0;
    Task task;
  };

  void loop();
  void wake();
  void assertLoopOrIdle(const char* what) const;

  int epollFd_ = -1;
  int wakeFd_ = -1;

  std::thread thread_;
  // Published by the loop thread itself on entry: onLoopThread() must not
  // read `thread_`, whose move-assignment in start() can race the freshly
  // spawned loop's first callbacks.
  std::atomic<std::thread::id> loopThreadId_{};
  std::atomic<bool> running_{false};
  std::atomic<bool> started_{false};

  // Loop-thread state (pre-start mutation allowed: no loop thread yet).
  std::unordered_map<int, FdEntry> fds_;
  std::uint32_t nextGeneration_ = 1;
  std::multimap<Clock::time_point, TimerEntry> timers_;
  std::unordered_map<TimerId, std::multimap<Clock::time_point,
                                            TimerEntry>::iterator>
      timersById_;
  TimerId nextTimerId_ = 1;

  std::mutex tasksMutex_;
  std::deque<Task> tasks_;
  bool stopped_ = false;  // guarded by tasksMutex_: post() becomes a no-op
};

}  // namespace privtopk::net
