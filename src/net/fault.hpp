// Fault injection for transports: a decorator that wraps any Transport and
// applies a deterministic schedule of message drops, link delays and
// fail-stop node crashes.  Used by the robustness test suites and exposed
// on the CLI via --fault-spec (see docs/ROBUSTNESS.md).
//
// Deployment model: in-process fleets share one transport, so a single
// wrapper suffices; TCP fleets run one transport per node, so each node
// wraps its own transport around a SHARED FaultState — that way a crash
// scheduled for node X makes X's own sends/receives fail AND makes every
// other node's sends to X fail, exactly like a real process death.

#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace privtopk::net {

/// Declarative fault schedule.  All indices are deterministic message
/// counts, never wall-clock, so tests are reproducible.
struct FaultSpec {
  /// Drop the `nth` message (1-based) sent on the `from`->`to` link.
  struct Drop {
    NodeId from = 0;
    NodeId to = 0;
    std::size_t nth = 1;
  };
  /// Delay every message on the `from`->`to` link by `delay`.
  struct Delay {
    NodeId from = 0;
    NodeId to = 0;
    std::chrono::milliseconds delay{0};
  };
  /// Fail-stop `node` once it has sent `afterSends` messages (0 = crashed
  /// from the start).  A crashed node's sends and receives fail, and peers
  /// sending to it see a TransportError.
  struct Crash {
    NodeId node = 0;
    std::size_t afterSends = 0;
  };

  std::vector<Drop> drops;
  std::vector<Delay> delays;
  std::vector<Crash> crashes;

  [[nodiscard]] bool empty() const {
    return drops.empty() && delays.empty() && crashes.empty();
  }

  /// Parses a comma/semicolon-separated clause list, e.g.
  ///   "drop:0->1:3,delay:1->2:50,crash:2@5"
  ///   drop:F->T:N    drop the Nth message from F to T (1-based)
  ///   delay:F->T:MS  delay the F->T link by MS milliseconds
  ///   crash:NODE@N   fail-stop NODE after it has sent N messages
  /// Throws ConfigError on malformed input, naming the offending token.
  /// Empty string = no faults.  Numbers must be whole tokens: "50x" is an
  /// error, not 50.
  static FaultSpec parse(const std::string& text);

  /// Canonical spec string; parse(toString()) reproduces the spec exactly.
  [[nodiscard]] std::string toString() const;
};

/// Mutable fault bookkeeping shared by every wrapper of one logical fleet.
class FaultState {
 public:
  explicit FaultState(FaultSpec spec);

  /// Returns true when the message should be dropped; advances counters
  /// and may transition `from` into the crashed set.  Throws
  /// TransportError when either endpoint is (now) crashed.
  /// On a deliverable message, `delayOut` receives the link delay (0 when
  /// none).
  bool onSend(NodeId from, NodeId to, std::chrono::milliseconds& delayOut);

  [[nodiscard]] bool isCrashed(NodeId node) const;
  void crash(NodeId node);
  void revive(NodeId node);

  [[nodiscard]] std::size_t dropsInjected() const;
  [[nodiscard]] std::size_t delaysInjected() const;

 private:
  mutable std::mutex mutex_;
  FaultSpec spec_;
  std::set<NodeId> crashed_;
  std::map<std::pair<NodeId, NodeId>, std::size_t> linkSendCount_;
  std::map<NodeId, std::size_t> nodeSendCount_;
  std::size_t dropsInjected_ = 0;
  std::size_t delaysInjected_ = 0;
};

class FaultInjectingTransport final : public Transport {
 public:
  /// Standalone wrapper with its own fault state (in-process fleets).
  FaultInjectingTransport(Transport& inner, FaultSpec spec);

  /// Wrapper sharing `state` with sibling wrappers (one-transport-per-node
  /// TCP fleets).
  FaultInjectingTransport(Transport& inner, std::shared_ptr<FaultState> state);

  void send(NodeId from, NodeId to, const Bytes& payload) override;
  [[nodiscard]] std::optional<Envelope> receive(
      NodeId node, std::chrono::milliseconds timeout) override;
  void shutdown() override;

  /// Programmatic fail-stop / restart, for tests that crash a node at a
  /// precise protocol point rather than a message count.
  void crashNode(NodeId node) { state_->crash(node); }
  void reviveNode(NodeId node) { state_->revive(node); }
  [[nodiscard]] bool isCrashed(NodeId node) const {
    return state_->isCrashed(node);
  }

  [[nodiscard]] std::size_t dropsInjected() const {
    return state_->dropsInjected();
  }
  [[nodiscard]] std::size_t delaysInjected() const {
    return state_->delaysInjected();
  }
  [[nodiscard]] const std::shared_ptr<FaultState>& state() const {
    return state_;
  }

 private:
  Transport* inner_;
  std::shared_ptr<FaultState> state_;

  obs::Counter& metricDropped_;
  obs::Counter& metricDelayed_;
  obs::Counter& metricCrashRejects_;
};

}  // namespace privtopk::net
