// Wire messages exchanged on the ring.
//
// Every message carries a query id so concurrent queries can share links.
// Framing/encryption is the transport's job; this layer is the typed
// payload codec (see common/serialization.hpp for the encoding rules).
//
// Every message also carries an obs::TraceContext as two trailing varints
// (trace id, parent span id) so distributed traces survive node hops.  A
// zero trace id means tracing is off and costs two bytes per message.

#pragma once

#include <cstdint>
#include <variant>

#include "common/serialization.hpp"
#include "common/types.hpp"
#include "obs/context.hpp"

namespace privtopk::net {

/// The per-round payload: the current global top-k vector.
struct RoundToken {
  std::uint64_t queryId = 0;
  Round round = 1;
  TopKVector vector;
  obs::TraceContext ctx{};

  friend bool operator==(const RoundToken&, const RoundToken&) = default;
};

/// Final-result broadcast sent around the ring once the starting node
/// terminates the query.
struct ResultAnnouncement {
  std::uint64_t queryId = 0;
  TopKVector result;
  obs::TraceContext ctx{};

  friend bool operator==(const ResultAnnouncement&,
                         const ResultAnnouncement&) = default;
};

/// Ring-maintenance control message (failure repair handshakes in the TCP
/// deployment; the simulator performs repairs directly).
struct RingRepair {
  std::uint64_t queryId = 0;
  NodeId failedNode = 0;
  NodeId newSuccessor = 0;
  obs::TraceContext ctx{};

  friend bool operator==(const RingRepair&, const RingRepair&) = default;
};

/// Additive-share payload for the secure-sum protocol (kNN label voting,
/// sum/count/average queries).
struct SumToken {
  std::uint64_t queryId = 0;
  Round round = 1;
  std::vector<std::int64_t> sums;  // one accumulator per counter
  obs::TraceContext ctx{};

  friend bool operator==(const SumToken&, const SumToken&) = default;
};

/// Announces a new query to the ring: the encoded query descriptor (opaque
/// at this layer; see query/descriptor.hpp) plus the agreed ring order.
/// Circles the ring once so every participant can register before the
/// first round token arrives (links are FIFO, so ordering is guaranteed).
struct QueryAnnounce {
  std::uint64_t queryId = 0;
  Bytes descriptor;
  std::vector<NodeId> ringOrder;

  // Group-parallel execution (paper §4.2; docs/PROTOCOL.md §6).  A grouped
  // query runs as phase-1 sub-queries (one per group ring) followed by a
  // phase-2 merge ring of delegates; each phase announce names the parent
  // query it serves.  Zero parentQueryId + phase 0 is a standalone query.
  std::uint64_t parentQueryId = 0;
  std::uint8_t phase = 0;      ///< 0 standalone, 1 group ring, 2 merge ring
  std::uint32_t groupSize = 0; ///< parent's requested group size (echo)

  // Privacy-mechanism echo (protocol/mechanism.hpp).  Duplicates the
  // selection inside the (opaque) descriptor so this layer can validate
  // without decoding it; the service cross-checks the echo against the
  // decoded descriptor on arrival.  Varint on the wire: the default
  // (mechanismId 0 = schedule) costs one zero byte and writes no knob.
  std::uint8_t mechanismId = 0;   ///< protocol::MechanismKind wire id
  std::uint32_t segments = 0;     ///< segment count (mechanismId 1 only)
  double ldpEpsilon = 0.0;        ///< LDP epsilon (mechanismId 2 only)
  obs::TraceContext ctx{};

  friend bool operator==(const QueryAnnounce&, const QueryAnnounce&) = default;
};

using Message = std::variant<RoundToken, ResultAnnouncement, RingRepair,
                             SumToken, QueryAnnounce>;

/// Serializes a message (1-byte tag + body).
[[nodiscard]] Bytes encodeMessage(const Message& message);

/// Parses a message; throws ProtocolError on malformed input.
[[nodiscard]] Message decodeMessage(std::span<const std::uint8_t> bytes);

}  // namespace privtopk::net
