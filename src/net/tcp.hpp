// TCP transport: real sockets with length-prefixed frames and optional
// per-link authenticated encryption (DH handshake -> ChaCha20 + HMAC).
//
// Topology model: every node runs one TcpTransport bound to its own port
// and knows the host:port of every peer.  Outgoing connections are created
// lazily on first send (with retry while the peer's listener comes up);
// incoming connections are accepted by a listener thread, each served by a
// reader thread that pushes decoded envelopes into a mailbox shared with
// receive().

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "crypto/dh.hpp"
#include "crypto/secure_channel.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace privtopk::net {

/// Address book entry.
struct TcpPeer {
  NodeId id = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// TcpTransport construction options.
struct TcpOptions {
  /// When true, every link runs a DH handshake at connect time and all
  /// frames are sealed (encrypt-then-MAC).
  bool encrypt = false;
  /// DH group for the handshake (tests use the fast 512-bit group).
  const crypto::DhGroup* group = nullptr;
  /// Seed for handshake key generation; mix in a per-process entropy
  /// source outside of tests.
  std::uint64_t keySeed = 0;
  /// How long send() keeps retrying the initial connect.
  std::chrono::milliseconds connectTimeout{5000};
};

class TcpTransport final : public Transport {
 public:
  /// Binds and starts listening on the port that `peers` assigns to
  /// `self`.  Throws TransportError when the bind fails.
  TcpTransport(NodeId self, std::vector<TcpPeer> peers,
               TcpOptions options = TcpOptions());
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void send(NodeId from, NodeId to, const Bytes& payload) override;
  [[nodiscard]] std::optional<Envelope> receive(
      NodeId node, std::chrono::milliseconds timeout) override;
  void shutdown() override;

  /// The port the listener actually bound (useful with port 0 = ephemeral).
  [[nodiscard]] std::uint16_t listenPort() const { return listenPort_; }

  /// Traffic counters (payload level, before sealing overhead).
  [[nodiscard]] std::size_t messagesSent() const { return messagesSent_.load(); }
  [[nodiscard]] std::size_t messagesReceived() const {
    return messagesReceived_.load();
  }
  [[nodiscard]] std::size_t bytesSent() const { return bytesSent_.load(); }
  [[nodiscard]] std::size_t bytesReceived() const {
    return bytesReceived_.load();
  }

 private:
  struct OutLink {
    int fd = -1;
    std::mutex writeMutex;
    std::unique_ptr<crypto::SecureSession> session;
  };

  void listenLoop();
  void readerLoop(int fd);
  OutLink& outgoingLink(NodeId to);

  NodeId self_;
  std::map<NodeId, TcpPeer> peers_;
  TcpOptions options_;

  // Written by shutdown() while listenLoop() blocks in accept(): atomic so
  // the cross-thread handoff is well-defined (TSan-clean).
  std::atomic<int> listenFd_{-1};
  std::uint16_t listenPort_ = 0;
  std::thread listenThread_;
  std::vector<std::thread> readerThreads_;
  std::vector<int> acceptedFds_;
  std::mutex readersMutex_;

  std::mutex outMutex_;
  std::map<NodeId, std::unique_ptr<OutLink>> outLinks_;

  std::mutex inboxMutex_;
  std::condition_variable inboxCv_;
  std::deque<Envelope> inbox_;

  std::atomic<std::size_t> messagesSent_{0};
  std::atomic<std::size_t> messagesReceived_{0};
  std::atomic<std::size_t> bytesSent_{0};
  std::atomic<std::size_t> bytesReceived_{0};

  // Cached global-metric cells (registration is cold; inc is lock-free).
  obs::Counter& metricMessagesSent_;
  obs::Counter& metricBytesSent_;
  obs::Counter& metricMessagesReceived_;
  obs::Counter& metricBytesReceived_;
  obs::Counter& metricSendErrors_;
  obs::Counter& metricReceiveTimeouts_;
  obs::Gauge& metricQueueDepth_;

  std::atomic<bool> shutdown_{false};
};

}  // namespace privtopk::net
