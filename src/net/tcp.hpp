// TCP transport: real sockets with length-prefixed frames and optional
// per-link authenticated encryption (DH handshake -> ChaCha20 + HMAC).
//
// Topology model: every node runs one TcpTransport bound to its own port
// and knows the host:port of every peer.  All socket I/O for a node is
// multiplexed onto ONE epoll reactor thread (net/reactor.hpp): accepted
// connections are state machines on the loop instead of one blocking
// reader thread each, outgoing connects + handshakes are non-blocking with
// a single deadline (TcpOptions::connectTimeout bounds connect AND
// handshake), and sends never block — send() seals nothing, copies
// nothing, just moves the payload into the peer's bounded write queue and
// wakes the reactor.  The reactor drains a queue by gathering many queued
// frames into one writev() (length-prefix and payload as separate iovecs,
// so coalescing token frames bound for the same ring successor costs one
// syscall and zero concatenation copies).
//
// Failure model (see docs/ROBUSTNESS.md): a link that fails (broken write,
// peer EOF, connect/handshake timeout) is evicted on the reactor; its
// queued frames are dropped (exactly the loss model of a dying TCP
// socket), and the NEXT send() to that peer surfaces a TransportError and
// re-arms the slot so the send after that dials fresh.  A full write queue
// is not a link failure: send() throws OverloadError (the peer is alive
// but slow - back off and retry) and the link keeps draining.
//
// Inbound trust: the 4-byte hello naming the dialing node is checked
// against the address book; connections claiming an unknown NodeId are
// closed and counted in privtopk.transport.handshake_rejected.

#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/dh.hpp"
#include "crypto/secure_channel.hpp"
#include "net/reactor.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace privtopk::net {

/// Largest frame either side will put on (or accept from) the wire.
/// Enforced symmetrically: the frame decoder rejects oversized headers and
/// send() refuses oversized payloads instead of poisoning the receiver's
/// link.
inline constexpr std::uint32_t kMaxFrame = 64u << 20;  // 64 MiB

/// Bytes SecureSession::seal adds to a payload (8-byte sequence + 32-byte
/// MAC); send() pre-checks sealed size against kMaxFrame so an encrypted
/// frame never grows over the cap after queueing.
inline constexpr std::size_t kSealOverhead = 40;

/// Address book entry.
struct TcpPeer {
  NodeId id = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// TcpTransport construction options.
struct TcpOptions {
  /// When true, every link runs a DH handshake at connect time and all
  /// frames are sealed (encrypt-then-MAC).
  bool encrypt = false;
  /// DH group for the handshake (tests use the fast 512-bit group).
  const crypto::DhGroup* group = nullptr;
  /// Seed for handshake key generation; mix in a per-process entropy
  /// source outside of tests.
  std::uint64_t keySeed = 0;
  /// Bounds connection setup end to end: connect retries while the peer's
  /// listener comes up AND the post-connect hello/DH exchange.  A peer
  /// that accepts but never answers fails the link at this deadline
  /// instead of hanging the sender.
  std::chrono::milliseconds connectTimeout{5000};
  /// Per-peer write-queue bounds; a send that would exceed either throws
  /// OverloadError (backpressure, the link stays healthy).
  std::size_t maxQueuedFramesPerPeer = 4096;
  std::size_t maxQueuedBytesPerPeer = 64u << 20;
  /// SO_SNDBUF for outgoing sockets (0 = kernel default).  Tests shrink it
  /// to force backpressure quickly.
  int sendBufferBytes = 0;
  /// Test seam for the accept-retry path: the listener artificially fails
  /// this many accepted connections (as if accept() returned ECONNABORTED)
  /// before behaving normally.
  int testInjectAcceptErrors = 0;
};

class TcpTransport final : public Transport {
 public:
  /// Binds and starts listening on the port that `peers` assigns to
  /// `self`.  Throws TransportError when the bind fails.
  TcpTransport(NodeId self, std::vector<TcpPeer> peers,
               TcpOptions options = TcpOptions());
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Enqueues `payload` on the peer's write queue and wakes the reactor.
  /// Throws TransportError for unknown peers, oversized payloads, a link
  /// that failed since the previous send (re-arming it for redial), or a
  /// shut-down transport; throws OverloadError when the write queue is
  /// full.  Never blocks on the network.
  void send(NodeId from, NodeId to, const Bytes& payload) override;
  [[nodiscard]] std::optional<Envelope> receive(
      NodeId node, std::chrono::milliseconds timeout) override;
  void shutdown() override;

  /// The port the listener actually bound (useful with port 0 = ephemeral).
  [[nodiscard]] std::uint16_t listenPort() const { return listenPort_; }

  /// Traffic counters (payload level, before sealing overhead).
  [[nodiscard]] std::size_t messagesSent() const { return messagesSent_.load(); }
  [[nodiscard]] std::size_t messagesReceived() const {
    return messagesReceived_.load();
  }
  [[nodiscard]] std::size_t bytesSent() const { return bytesSent_.load(); }
  [[nodiscard]] std::size_t bytesReceived() const {
    return bytesReceived_.load();
  }
  /// Established links torn down after a failure (each is followed by a
  /// fresh dial on the second send after the error surfaced).
  [[nodiscard]] std::size_t linksEvicted() const { return linksEvicted_.load(); }
  /// Inbound connections rejected for claiming a NodeId outside the
  /// address book (or a malformed hello).
  [[nodiscard]] std::size_t handshakeRejected() const {
    return handshakeRejected_.load();
  }
  /// Transient accept() failures survived by the listener (the old
  /// transport died on the first one).
  [[nodiscard]] std::size_t acceptRetries() const {
    return acceptRetries_.load();
  }

 private:
  /// One wire frame: 4-byte little-endian length prefix + body, kept as
  /// separate buffers so writev() can gather them without concatenation.
  struct Frame {
    std::array<std::uint8_t, 4> header{};
    Bytes body;
  };

  /// Incremental length-prefixed frame decoder for non-blocking reads.
  class FrameReader {
   public:
    /// Reads until EAGAIN, EOF, or `sink` returns false.  Every complete
    /// frame is passed to `sink` (which may switch parsing phases).
    /// Returns false on clean EOF; throws TransportError on socket errors,
    /// mid-frame EOF, or an oversized header.
    bool pump(int fd, const std::function<bool(Bytes&&)>& sink);

   private:
    std::array<std::uint8_t, 4> header_{};
    std::size_t headerGot_ = 0;
    Bytes body_;
    std::size_t bodyGot_ = 0;
    bool inBody_ = false;
  };

  /// Outgoing link slot, one per peer, created up front.  `state`, the
  /// write queue, and the fail reason are shared with sender threads under
  /// `mutex`; everything else is reactor-thread-only.
  struct OutLink {
    explicit OutLink(NodeId id) : peer(id) {}

    const NodeId peer;

    enum class State { Idle, Connecting, Established, Failed };

    std::mutex mutex;
    State state = State::Idle;         // guarded by mutex
    std::string failReason;            // guarded by mutex
    std::deque<Bytes> queue;           // guarded by mutex
    std::size_t queuedBytes = 0;       // guarded by mutex
    bool kickPending = false;          // guarded by mutex
    bool everFailed = false;           // guarded by mutex

    // Inline-write fast path (plaintext links only).  `wireIdle` is set by
    // the reactor when the link is Established with nothing in flight and
    // nothing queued: the NEXT send() may then write straight from the
    // caller thread (one sendmsg, zero cross-thread handoff).  A partial
    // inline write parks its remainder here; the reactor adopts it ahead
    // of any queued frames on the next drain.  All five fields are guarded
    // by `mutex`, and failLink()/shutdown() close `fd` UNDER the mutex so
    // an inline sendmsg can never race the close.
    bool wireIdle = false;             // guarded by mutex
    bool inlinePending = false;        // guarded by mutex
    std::array<std::uint8_t, 4> inlineHeader{};  // guarded by mutex
    Bytes inlineBody;                  // guarded by mutex
    std::size_t inlineOff = 0;         // guarded by mutex

    // Reactor-thread-only connection state.
    int fd = -1;
    bool registered = false;           // fd added to the reactor
    bool connectPending = false;       // waiting for non-blocking connect
    bool awaitingHandshake = false;    // waiting for the responder's hello
    bool wantWrite = false;            // EPOLLOUT armed
    Reactor::Clock::time_point deadline{};
    Reactor::TimerId deadlineTimer = 0;
    Reactor::TimerId retryTimer = 0;
    std::unique_ptr<crypto::SecureHandshake> handshake;
    std::unique_ptr<crypto::SecureSession> session;
    std::vector<Frame> inflight;       // sealed frames being written
    std::size_t inflightIdx = 0;
    std::size_t inflightOff = 0;       // bytes of frame[idx] already written
    FrameReader reader;
  };

  /// Accepted connection state machine (reactor-thread-only).
  struct InConn {
    int fd = -1;
    enum class Phase { AwaitHello, AwaitDhHello, Streaming };
    Phase phase = Phase::AwaitHello;
    NodeId from = 0;
    std::unique_ptr<crypto::SecureSession> session;
    FrameReader reader;
    Frame reply;                       // responder DH hello pending write
    std::size_t replyOff = 0;
    bool replyPending = false;
    Reactor::TimerId deadlineTimer = 0;
  };

  // Reactor-thread handlers.
  void acceptReady(std::uint32_t events);
  void pauseAcceptFor(std::chrono::milliseconds backoff);
  void inConnReady(InConn* conn, std::uint32_t events);
  bool handleInFrame(InConn* conn, Bytes&& frame);
  void flushInReply(InConn* conn);
  void closeInConn(InConn* conn);
  void kickLink(OutLink* link);
  void startConnect(OutLink* link, bool freshDeadline);
  void scheduleConnectRetry(OutLink* link, const std::string& why);
  void outReady(OutLink* link, std::uint32_t events);
  void onConnected(OutLink* link);
  void markEstablished(OutLink* link);
  void readLink(OutLink* link);
  void drainLink(OutLink* link);
  void setWantWrite(OutLink* link, bool want);
  void failLink(OutLink* link, const std::string& reason);
  void deliver(NodeId from, Bytes&& payload);

  NodeId self_;
  std::map<NodeId, TcpPeer> peers_;
  TcpOptions options_;

  Reactor reactor_;
  int listenFd_ = -1;
  std::uint16_t listenPort_ = 0;
  bool acceptPaused_ = false;  // reactor-thread-only
  int injectAcceptErrorsLeft_ = 0;  // reactor-thread-only

  std::map<NodeId, std::unique_ptr<OutLink>> outLinks_;  // fixed after ctor
  std::unordered_map<int, std::unique_ptr<InConn>> inConns_;  // loop only

  std::mutex inboxMutex_;
  std::condition_variable inboxCv_;
  std::deque<Envelope> inbox_;

  std::atomic<std::size_t> messagesSent_{0};
  std::atomic<std::size_t> messagesReceived_{0};
  std::atomic<std::size_t> bytesSent_{0};
  std::atomic<std::size_t> bytesReceived_{0};
  std::atomic<std::size_t> linksEvicted_{0};
  std::atomic<std::size_t> handshakeRejected_{0};
  std::atomic<std::size_t> acceptRetries_{0};

  // Cached global-metric cells (registration is cold; inc is lock-free).
  obs::Counter& metricMessagesSent_;
  obs::Counter& metricBytesSent_;
  obs::Counter& metricMessagesReceived_;
  obs::Counter& metricBytesReceived_;
  obs::Counter& metricSendErrors_;
  obs::Counter& metricReceiveTimeouts_;
  obs::Counter& metricLinksEvicted_;
  obs::Counter& metricReconnects_;
  obs::Counter& metricHandshakeRejected_;
  obs::Counter& metricAcceptRetries_;
  obs::Counter& metricOverloadRejected_;
  obs::Counter& metricFramesCoalesced_;
  obs::Counter& metricInlineWrites_;
  obs::Gauge& metricQueueDepth_;
  obs::Gauge& metricWriteQueueDepth_;

  std::atomic<bool> shutdown_{false};
};

}  // namespace privtopk::net
