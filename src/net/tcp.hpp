// TCP transport: real sockets with length-prefixed frames and optional
// per-link authenticated encryption (DH handshake -> ChaCha20 + HMAC).
//
// Topology model: every node runs one TcpTransport bound to its own port
// and knows the host:port of every peer.  Outgoing connections are created
// lazily on first send (with retry while the peer's listener comes up);
// incoming connections are accepted by a listener thread, each served by a
// reader thread that pushes decoded envelopes into a mailbox shared with
// receive().
//
// Fault tolerance (see docs/ROBUSTNESS.md): a send failure evicts the
// broken link and send() transparently reconnects with exponential backoff
// (up to TcpOptions::sendRetries attempts) before surfacing the error.
// Connect/handshake for one peer never blocks traffic to other peers: the
// global map mutex only guards slot lookup; dialing happens under a
// per-peer mutex.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "crypto/dh.hpp"
#include "crypto/secure_channel.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"

namespace privtopk::net {

/// Largest frame either side will put on (or accept from) the wire.
/// Enforced symmetrically: readFrame rejects oversized headers and send()
/// refuses oversized payloads instead of poisoning the receiver's link.
inline constexpr std::uint32_t kMaxFrame = 64u << 20;  // 64 MiB

/// Address book entry.
struct TcpPeer {
  NodeId id = 0;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// TcpTransport construction options.
struct TcpOptions {
  /// When true, every link runs a DH handshake at connect time and all
  /// frames are sealed (encrypt-then-MAC).
  bool encrypt = false;
  /// DH group for the handshake (tests use the fast 512-bit group).
  const crypto::DhGroup* group = nullptr;
  /// Seed for handshake key generation; mix in a per-process entropy
  /// source outside of tests.
  std::uint64_t keySeed = 0;
  /// How long one connect attempt keeps retrying while the peer's
  /// listener comes up.
  std::chrono::milliseconds connectTimeout{5000};
  /// How many times send() evicts a broken link and reconnects before
  /// giving up (0 = fail on the first broken write).
  int sendRetries = 2;
  /// Exponential backoff between reconnect attempts.
  std::chrono::milliseconds backoffInitial{10};
  std::chrono::milliseconds backoffMax{1000};
};

class TcpTransport final : public Transport {
 public:
  /// Binds and starts listening on the port that `peers` assigns to
  /// `self`.  Throws TransportError when the bind fails.
  TcpTransport(NodeId self, std::vector<TcpPeer> peers,
               TcpOptions options = TcpOptions());
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  void send(NodeId from, NodeId to, const Bytes& payload) override;
  [[nodiscard]] std::optional<Envelope> receive(
      NodeId node, std::chrono::milliseconds timeout) override;
  void shutdown() override;

  /// The port the listener actually bound (useful with port 0 = ephemeral).
  [[nodiscard]] std::uint16_t listenPort() const { return listenPort_; }

  /// Traffic counters (payload level, before sealing overhead).
  [[nodiscard]] std::size_t messagesSent() const { return messagesSent_.load(); }
  [[nodiscard]] std::size_t messagesReceived() const {
    return messagesReceived_.load();
  }
  [[nodiscard]] std::size_t bytesSent() const { return bytesSent_.load(); }
  [[nodiscard]] std::size_t bytesReceived() const {
    return bytesReceived_.load();
  }
  /// Links evicted after a broken write (each is followed by a reconnect
  /// attempt on the next send).
  [[nodiscard]] std::size_t linksEvicted() const { return linksEvicted_.load(); }

 private:
  struct OutLink {
    // Atomic: shutdown() pokes the descriptor with ::shutdown() while a
    // writer may be mid-send (the write then fails fast and releases
    // writeMutex for the close).
    std::atomic<int> fd{-1};
    std::mutex writeMutex;
    std::unique_ptr<crypto::SecureSession> session;
    // Set (under writeMutex) when a write failed and the fd was closed;
    // racing senders waiting on writeMutex must not touch the stale fd.
    bool poisoned = false;
  };

  /// Per-peer slot: `connectMutex` serialises dialing that one peer so a
  /// slow or dead peer cannot head-of-line-block sends to other peers
  /// (the map-wide outMutex_ is only held for pointer reads/writes).
  struct LinkSlot {
    std::mutex connectMutex;
    std::shared_ptr<OutLink> link;  // guarded by outMutex_
  };

  void listenLoop();
  void readerLoop(int fd);
  std::shared_ptr<OutLink> outgoingLink(NodeId to);
  std::shared_ptr<OutLink> dialPeer(NodeId to);
  void evictLink(NodeId to, const std::shared_ptr<OutLink>& link);

  NodeId self_;
  std::map<NodeId, TcpPeer> peers_;
  TcpOptions options_;

  // Written by shutdown() while listenLoop() blocks in accept(): atomic so
  // the cross-thread handoff is well-defined (TSan-clean).
  std::atomic<int> listenFd_{-1};
  std::uint16_t listenPort_ = 0;
  std::thread listenThread_;
  std::vector<std::thread> readerThreads_;
  std::vector<int> acceptedFds_;
  std::mutex readersMutex_;

  std::mutex outMutex_;
  std::map<NodeId, std::shared_ptr<LinkSlot>> outLinks_;

  std::mutex inboxMutex_;
  std::condition_variable inboxCv_;
  std::deque<Envelope> inbox_;

  std::atomic<std::size_t> messagesSent_{0};
  std::atomic<std::size_t> messagesReceived_{0};
  std::atomic<std::size_t> bytesSent_{0};
  std::atomic<std::size_t> bytesReceived_{0};
  std::atomic<std::size_t> linksEvicted_{0};

  // Cached global-metric cells (registration is cold; inc is lock-free).
  obs::Counter& metricMessagesSent_;
  obs::Counter& metricBytesSent_;
  obs::Counter& metricMessagesReceived_;
  obs::Counter& metricBytesReceived_;
  obs::Counter& metricSendErrors_;
  obs::Counter& metricReceiveTimeouts_;
  obs::Counter& metricLinksEvicted_;
  obs::Counter& metricReconnects_;
  obs::Gauge& metricQueueDepth_;

  std::atomic<bool> shutdown_{false};
};

}  // namespace privtopk::net
