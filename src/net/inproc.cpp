#include "net/inproc.hpp"

namespace privtopk::net {

namespace {
const obs::Labels kInProcLabels{{"transport", "inproc"}};
}  // namespace

InProcTransport::InProcTransport(std::size_t nodeCount,
                                 std::size_t maxQueueDepth)
    : mailboxes_(nodeCount), maxQueueDepth_(maxQueueDepth),
      metricMessagesSent_(
          obs::counter("privtopk.transport.messages_sent", kInProcLabels)),
      metricBytesSent_(
          obs::counter("privtopk.transport.bytes_sent", kInProcLabels)),
      metricMessagesReceived_(
          obs::counter("privtopk.transport.messages_received", kInProcLabels)),
      metricBytesReceived_(
          obs::counter("privtopk.transport.bytes_received", kInProcLabels)),
      metricSendErrors_(
          obs::counter("privtopk.transport.send_errors", kInProcLabels)),
      metricReceiveTimeouts_(
          obs::counter("privtopk.transport.receive_timeouts", kInProcLabels)),
      metricQueueDepth_(
          obs::gauge("privtopk.transport.queue_depth", kInProcLabels)) {}

void InProcTransport::send(NodeId from, NodeId to, const Bytes& payload) {
  std::unique_lock lock(mutex_);
  if (shutdown_) {
    metricSendErrors_.inc();
    throw TransportError("InProcTransport: shut down");
  }
  if (to >= mailboxes_.size()) {
    metricSendErrors_.inc();
    throw TransportError("InProcTransport: unknown destination " +
                         std::to_string(to));
  }
  if (maxQueueDepth_ > 0 && mailboxes_[to].queue.size() >= maxQueueDepth_) {
    throw OverloadError("InProcTransport: mailbox " + std::to_string(to) +
                            " is full (" +
                            std::to_string(mailboxes_[to].queue.size()) +
                            " envelopes)",
                        std::chrono::milliseconds(1));
  }
  mailboxes_[to].queue.push_back(Envelope{from, to, payload});
  ++messagesSent_;
  bytesSent_ += payload.size();
  metricMessagesSent_.inc();
  metricBytesSent_.inc(payload.size());
  metricQueueDepth_.add(1);
  cv_.notify_all();
}

std::optional<Envelope> InProcTransport::receive(
    NodeId node, std::chrono::milliseconds timeout) {
  std::unique_lock lock(mutex_);
  if (node >= mailboxes_.size()) {
    throw TransportError("InProcTransport: unknown node " +
                         std::to_string(node));
  }
  auto& box = mailboxes_[node];
  const bool ready = cv_.wait_for(lock, timeout, [&] {
    return shutdown_ || !box.queue.empty();
  });
  if (!ready || box.queue.empty()) {
    metricReceiveTimeouts_.inc();
    return std::nullopt;
  }
  Envelope env = std::move(box.queue.front());
  box.queue.pop_front();
  metricQueueDepth_.sub(1);
  metricMessagesReceived_.inc();
  metricBytesReceived_.inc(env.payload.size());
  return env;
}

void InProcTransport::shutdown() {
  std::unique_lock lock(mutex_);
  if (!shutdown_) {
    // Give discarded envelopes' contribution back to the shared gauge so
    // a transport restarted in the same process starts from level.
    std::size_t undelivered = 0;
    for (auto& box : mailboxes_) {
      undelivered += box.queue.size();
      box.queue.clear();
    }
    if (undelivered > 0) {
      metricQueueDepth_.sub(static_cast<std::int64_t>(undelivered));
    }
  }
  shutdown_ = true;
  cv_.notify_all();
}

std::size_t InProcTransport::messagesSent() const {
  std::unique_lock lock(mutex_);
  return messagesSent_;
}

std::size_t InProcTransport::bytesSent() const {
  std::unique_lock lock(mutex_);
  return bytesSent_;
}

}  // namespace privtopk::net
