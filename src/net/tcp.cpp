#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.hpp"
#include "net/socket_util.hpp"

namespace privtopk::net {

namespace {

const obs::Labels kTcpLabels{{"transport", "tcp"}};

/// An oversized frame is a caller error, not a link failure: send() must
/// surface it without evicting the (healthy) link or retrying.
struct FrameTooLarge final : TransportError {
  using TransportError::TransportError;
};

void writeFrame(int fd, std::span<const std::uint8_t> payload) {
  // Mirror of readFrame's cap: an oversized frame would be accepted by the
  // local kernel and then kill the receiver's connection mid-stream.
  if (payload.size() > kMaxFrame) {
    throw FrameTooLarge("tcp frame too large to send (" +
                        std::to_string(payload.size()) + " > " +
                        std::to_string(kMaxFrame) + " bytes)");
  }
  std::uint8_t header[4];
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  writeAll(fd, header, 4);
  writeAll(fd, payload.data(), payload.size());
}

/// Reads one frame; nullopt on orderly EOF.
std::optional<Bytes> readFrame(int fd) {
  std::uint8_t header[4];
  if (!readAll(fd, header, 4)) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  if (len > kMaxFrame) throw TransportError("tcp frame too large");
  Bytes payload(len);
  if (len > 0 && !readAll(fd, payload.data(), len)) {
    throw TransportError("tcp connection closed mid-frame");
  }
  return payload;
}

}  // namespace

TcpTransport::TcpTransport(NodeId self, std::vector<TcpPeer> peers,
                           TcpOptions options)
    : self_(self), options_(options),
      metricMessagesSent_(
          obs::counter("privtopk.transport.messages_sent", kTcpLabels)),
      metricBytesSent_(
          obs::counter("privtopk.transport.bytes_sent", kTcpLabels)),
      metricMessagesReceived_(
          obs::counter("privtopk.transport.messages_received", kTcpLabels)),
      metricBytesReceived_(
          obs::counter("privtopk.transport.bytes_received", kTcpLabels)),
      metricSendErrors_(
          obs::counter("privtopk.transport.send_errors", kTcpLabels)),
      metricReceiveTimeouts_(
          obs::counter("privtopk.transport.receive_timeouts", kTcpLabels)),
      metricLinksEvicted_(
          obs::counter("privtopk.transport.links_evicted", kTcpLabels)),
      metricReconnects_(
          obs::counter("privtopk.transport.reconnects", kTcpLabels)),
      metricQueueDepth_(
          obs::gauge("privtopk.transport.queue_depth", kTcpLabels)) {
  for (const auto& p : peers) peers_[p.id] = p;
  const auto it = peers_.find(self);
  if (it == peers_.end()) {
    throw TransportError("TcpTransport: self not in peer list");
  }
  if (options_.encrypt && options_.group == nullptr) {
    options_.group = &crypto::DhGroup::test512();
  }
  listenFd_ = makeListener(it->second.port, listenPort_);
  listenThread_ = std::thread([this] { listenLoop(); });
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::listenLoop() {
  while (!shutdown_.load()) {
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd = ::accept(listenFd_.load(std::memory_order_relaxed),
                            reinterpret_cast<sockaddr*>(&peer), &len);
    if (fd < 0) {
      if (shutdown_.load()) return;
      if (errno == EINTR) continue;
      PRIVTOPK_LOG_WARN("tcp accept failed: ", std::strerror(errno));
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    std::scoped_lock lock(readersMutex_);
    if (shutdown_.load()) {
      ::close(fd);
      return;
    }
    acceptedFds_.push_back(fd);
    readerThreads_.emplace_back([this, fd] { readerLoop(fd); });
  }
}

void TcpTransport::readerLoop(int fd) {
  std::unique_ptr<crypto::SecureSession> session;
  NodeId from = 0;
  try {
    // First frame identifies the sender.
    const std::optional<Bytes> hello = readFrame(fd);
    if (!hello || hello->size() != 4) return;
    for (int i = 0; i < 4; ++i) {
      from |= static_cast<NodeId>((*hello)[static_cast<std::size_t>(i)])
              << (8 * i);
    }

    if (options_.encrypt) {
      // Responder side of the handshake: read the initiator's public value,
      // answer with ours.
      Rng rng(splitmix64(options_.keySeed ^ (static_cast<std::uint64_t>(self_)
                                             << 32) ^ from ^ 0xACCE55ULL));
      crypto::SecureHandshake hs(crypto::SecureHandshake::Role::Responder,
                                 *options_.group, rng);
      const std::optional<Bytes> peerHello = readFrame(fd);
      if (!peerHello) return;
      writeFrame(fd, hs.localHello());
      session = std::make_unique<crypto::SecureSession>(
          hs.deriveSession(*peerHello));
    }

    while (!shutdown_.load()) {
      std::optional<Bytes> frame = readFrame(fd);
      if (!frame) break;  // peer closed
      Bytes payload =
          session ? session->open(*frame) : std::move(*frame);
      messagesReceived_.fetch_add(1);
      bytesReceived_.fetch_add(payload.size());
      metricMessagesReceived_.inc();
      metricBytesReceived_.inc(payload.size());
      {
        std::scoped_lock lock(inboxMutex_);
        inbox_.push_back(Envelope{from, self_, std::move(payload)});
        metricQueueDepth_.add(1);
      }
      inboxCv_.notify_all();
    }
  } catch (const Error& e) {
    if (!shutdown_.load()) {
      PRIVTOPK_LOG_WARN("tcp reader for peer ", from, " stopped: ", e.what());
    }
  }
  // The fd is closed by shutdown(), which owns accepted descriptors.
}

std::shared_ptr<TcpTransport::OutLink> TcpTransport::dialPeer(NodeId to) {
  const auto peerIt = peers_.find(to);
  if (peerIt == peers_.end()) {
    throw TransportError("TcpTransport: unknown peer " + std::to_string(to));
  }
  const TcpPeer& peer = peerIt->second;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("TcpTransport: bad peer host " + peer.host);
  }

  // Retry while the peer's listener comes up.
  const auto deadline =
      std::chrono::steady_clock::now() + options_.connectTimeout;
  int fd = -1;
  while (true) {
    if (shutdown_.load()) throw TransportError("TcpTransport: shut down");
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw TransportError("TcpTransport: socket() failed");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
    if (std::chrono::steady_clock::now() >= deadline) {
      throw TransportError("TcpTransport: connect to " + std::to_string(to) +
                           " timed out");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  auto link = std::make_shared<OutLink>();
  link->fd.store(fd, std::memory_order_relaxed);

  try {
    // Identify ourselves.
    std::uint8_t id[4];
    for (int i = 0; i < 4; ++i) {
      id[i] = static_cast<std::uint8_t>(self_ >> (8 * i));
    }
    writeFrame(fd, std::span<const std::uint8_t>(id, 4));

    if (options_.encrypt) {
      Rng rng(splitmix64(options_.keySeed ^ (static_cast<std::uint64_t>(self_)
                                             << 32) ^ to ^ 0x1417ULL));
      crypto::SecureHandshake hs(crypto::SecureHandshake::Role::Initiator,
                                 *options_.group, rng);
      writeFrame(fd, hs.localHello());
      const std::optional<Bytes> peerHello = readFrame(fd);
      if (!peerHello) throw TransportError("TcpTransport: handshake EOF");
      link->session = std::make_unique<crypto::SecureSession>(
          hs.deriveSession(*peerHello));
    }
  } catch (...) {
    ::close(fd);
    link->fd.store(-1, std::memory_order_relaxed);
    throw;
  }
  return link;
}

std::shared_ptr<TcpTransport::OutLink> TcpTransport::outgoingLink(NodeId to) {
  std::shared_ptr<LinkSlot> slot;
  {
    std::scoped_lock lock(outMutex_);
    auto it = outLinks_.find(to);
    if (it == outLinks_.end()) {
      it = outLinks_.emplace(to, std::make_shared<LinkSlot>()).first;
    }
    slot = it->second;
    if (slot->link) return slot->link;
  }

  // Dial under the per-peer mutex only: a dead peer's connect timeout must
  // not stall sends to every other peer.
  std::scoped_lock connectLock(slot->connectMutex);
  {
    std::scoped_lock lock(outMutex_);
    if (slot->link) return slot->link;  // a racer connected first
  }
  std::shared_ptr<OutLink> link = dialPeer(to);
  std::scoped_lock lock(outMutex_);
  if (shutdown_.load()) {
    const int fd = link->fd.exchange(-1, std::memory_order_relaxed);
    if (fd >= 0) ::close(fd);
    throw TransportError("TcpTransport: shut down");
  }
  slot->link = link;
  return link;
}

void TcpTransport::evictLink(NodeId to, const std::shared_ptr<OutLink>& link) {
  {
    std::scoped_lock lock(outMutex_);
    const auto it = outLinks_.find(to);
    if (it != outLinks_.end() && it->second->link == link) {
      it->second->link.reset();
      linksEvicted_.fetch_add(1);
      metricLinksEvicted_.inc();
    }
  }
  // Poison under writeMutex so a racing sender queued on this link sees the
  // flag instead of writing into a closed (possibly reused) descriptor.
  std::scoped_lock lock(link->writeMutex);
  if (!link->poisoned) {
    link->poisoned = true;
    const int fd = link->fd.exchange(-1, std::memory_order_relaxed);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }
}

void TcpTransport::send(NodeId from, NodeId to, const Bytes& payload) {
  if (from != self_) {
    throw TransportError("TcpTransport: can only send as self");
  }
  if (payload.size() > kMaxFrame) {
    metricSendErrors_.inc();
    throw TransportError("TcpTransport: payload exceeds kMaxFrame (" +
                         std::to_string(payload.size()) + " bytes)");
  }
  std::chrono::milliseconds backoff = options_.backoffInitial;
  for (int attempt = 0;; ++attempt) {
    if (shutdown_.load()) throw TransportError("TcpTransport: shut down");
    std::shared_ptr<OutLink> link;
    try {
      link = outgoingLink(to);
      std::scoped_lock lock(link->writeMutex);
      if (link->poisoned) {
        throw TransportError("TcpTransport: link to " + std::to_string(to) +
                             " was evicted");
      }
      const int fd = link->fd.load(std::memory_order_relaxed);
      if (link->session) {
        writeFrame(fd, link->session->seal(payload));
      } else {
        writeFrame(fd, payload);
      }
      break;
    } catch (const FrameTooLarge&) {
      // Sealing overhead pushed the frame over the cap: the link is fine,
      // the payload is not.  No eviction, no retry.
      metricSendErrors_.inc();
      throw;
    } catch (const TransportError&) {
      metricSendErrors_.inc();
      if (link) evictLink(to, link);
      if (attempt >= options_.sendRetries || shutdown_.load()) throw;
      metricReconnects_.inc();
      std::this_thread::sleep_for(backoff);
      backoff = std::min(backoff * 2, options_.backoffMax);
    }
  }
  messagesSent_.fetch_add(1);
  bytesSent_.fetch_add(payload.size());
  metricMessagesSent_.inc();
  metricBytesSent_.inc(payload.size());
}

std::optional<Envelope> TcpTransport::receive(
    NodeId node, std::chrono::milliseconds timeout) {
  if (node != self_) {
    throw TransportError("TcpTransport: can only receive as self");
  }
  std::unique_lock lock(inboxMutex_);
  const bool ready = inboxCv_.wait_for(lock, timeout, [&] {
    return shutdown_.load() || !inbox_.empty();
  });
  if (!ready || inbox_.empty()) {
    // A shutdown wakeup is not a timeout; only count real deadline misses.
    if (!shutdown_.load()) metricReceiveTimeouts_.inc();
    return std::nullopt;
  }
  Envelope env = std::move(inbox_.front());
  inbox_.pop_front();
  metricQueueDepth_.sub(1);
  return env;
}

void TcpTransport::shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;

  // Closing the listener unblocks accept(); shutting down links unblocks
  // reader threads.
  const int listenFd = listenFd_.exchange(-1, std::memory_order_relaxed);
  if (listenFd >= 0) {
    ::shutdown(listenFd, SHUT_RDWR);
    ::close(listenFd);
  }
  {
    // Two phases: ::shutdown() first (safe concurrently with a blocked
    // writer, makes its write fail fast), then close under writeMutex once
    // the writer is out.
    std::vector<std::shared_ptr<OutLink>> links;
    {
      std::scoped_lock lock(outMutex_);
      for (auto& [id, slot] : outLinks_) {
        if (slot->link) links.push_back(slot->link);
      }
    }
    for (auto& link : links) {
      const int fd = link->fd.load(std::memory_order_relaxed);
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
    for (auto& link : links) {
      std::scoped_lock lock(link->writeMutex);
      link->poisoned = true;
      const int fd = link->fd.exchange(-1, std::memory_order_relaxed);
      if (fd >= 0) ::close(fd);
    }
  }
  if (listenThread_.joinable()) listenThread_.join();
  {
    // Shutting down accepted sockets unblocks recv() in reader threads.
    std::scoped_lock lock(readersMutex_);
    for (int fd : acceptedFds_) ::shutdown(fd, SHUT_RDWR);
    for (auto& t : readerThreads_) {
      if (t.joinable()) t.join();
    }
    readerThreads_.clear();
    for (int fd : acceptedFds_) ::close(fd);
    acceptedFds_.clear();
  }
  inboxCv_.notify_all();
}

}  // namespace privtopk::net
