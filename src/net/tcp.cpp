#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.hpp"
#include "net/socket_util.hpp"

namespace privtopk::net {

namespace {

const obs::Labels kTcpLabels{{"transport", "tcp"}};

using namespace std::chrono_literals;

/// Listener backoff after a resource-exhaustion accept failure: long
/// enough for fds to be released, short enough that a healthy peer's
/// connect attempt still lands within its own connect timeout.
constexpr auto kAcceptBackoff = 50ms;

/// Delay between connect attempts while the peer's listener comes up.
constexpr auto kConnectRetryDelay = 20ms;

/// Frames gathered into one writev(); 2 iovecs per frame (header + body).
constexpr std::size_t kMaxWritevFrames = 64;

std::array<std::uint8_t, 4> lenHeader(std::size_t n) {
  std::array<std::uint8_t, 4> h{};
  for (int i = 0; i < 4; ++i) h[i] = static_cast<std::uint8_t>(n >> (8 * i));
  return h;
}

std::uint32_t decodeLe32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// FrameReader
// ---------------------------------------------------------------------------

bool TcpTransport::FrameReader::pump(
    int fd, const std::function<bool(Bytes&&)>& sink) {
  for (;;) {
    if (!inBody_) {
      while (headerGot_ < 4) {
        const ssize_t n =
            ::recv(fd, header_.data() + headerGot_, 4 - headerGot_, 0);
        if (n == 0) {
          if (headerGot_ == 0) return false;  // clean EOF between frames
          throw TransportError("tcp connection closed mid-frame");
        }
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
          throw TransportError(std::string("socket recv failed: ") +
                               std::strerror(errno));
        }
        headerGot_ += static_cast<std::size_t>(n);
      }
      const std::uint32_t len = decodeLe32(header_.data());
      if (len > kMaxFrame) throw TransportError("tcp frame too large");
      body_.assign(len, 0);
      bodyGot_ = 0;
      inBody_ = true;
    }
    while (bodyGot_ < body_.size()) {
      const ssize_t n =
          ::recv(fd, body_.data() + bodyGot_, body_.size() - bodyGot_, 0);
      if (n == 0) throw TransportError("tcp connection closed mid-frame");
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        throw TransportError(std::string("socket recv failed: ") +
                             std::strerror(errno));
      }
      bodyGot_ += static_cast<std::size_t>(n);
    }
    inBody_ = false;
    headerGot_ = 0;
    if (!sink(std::move(body_))) return true;
  }
}

// ---------------------------------------------------------------------------
// Construction / teardown
// ---------------------------------------------------------------------------

TcpTransport::TcpTransport(NodeId self, std::vector<TcpPeer> peers,
                           TcpOptions options)
    : self_(self), options_(options),
      metricMessagesSent_(
          obs::counter("privtopk.transport.messages_sent", kTcpLabels)),
      metricBytesSent_(
          obs::counter("privtopk.transport.bytes_sent", kTcpLabels)),
      metricMessagesReceived_(
          obs::counter("privtopk.transport.messages_received", kTcpLabels)),
      metricBytesReceived_(
          obs::counter("privtopk.transport.bytes_received", kTcpLabels)),
      metricSendErrors_(
          obs::counter("privtopk.transport.send_errors", kTcpLabels)),
      metricReceiveTimeouts_(
          obs::counter("privtopk.transport.receive_timeouts", kTcpLabels)),
      metricLinksEvicted_(
          obs::counter("privtopk.transport.links_evicted", kTcpLabels)),
      metricReconnects_(
          obs::counter("privtopk.transport.reconnects", kTcpLabels)),
      metricHandshakeRejected_(
          obs::counter("privtopk.transport.handshake_rejected", kTcpLabels)),
      metricAcceptRetries_(
          obs::counter("privtopk.transport.accept_retries", kTcpLabels)),
      metricOverloadRejected_(
          obs::counter("privtopk.transport.overload_rejected", kTcpLabels)),
      metricFramesCoalesced_(
          obs::counter("privtopk.transport.frames_coalesced", kTcpLabels)),
      metricInlineWrites_(
          obs::counter("privtopk.transport.inline_writes", kTcpLabels)),
      metricQueueDepth_(
          obs::gauge("privtopk.transport.queue_depth", kTcpLabels)),
      metricWriteQueueDepth_(
          obs::gauge("privtopk.transport.write_queue_depth", kTcpLabels)) {
  for (const auto& p : peers) peers_[p.id] = p;
  const auto it = peers_.find(self);
  if (it == peers_.end()) {
    throw TransportError("TcpTransport: self not in peer list");
  }
  if (options_.encrypt && options_.group == nullptr) {
    options_.group = &crypto::DhGroup::test512();
  }
  injectAcceptErrorsLeft_ = options_.testInjectAcceptErrors;
  for (const auto& [id, peer] : peers_) {
    outLinks_.emplace(id, std::make_unique<OutLink>(id));
  }
  listenFd_ = makeListener(it->second.port, listenPort_);
  setNonBlocking(listenFd_);
  reactor_.add(listenFd_, EPOLLIN, [this](std::uint32_t ev) {
    acceptReady(ev);
  });
  reactor_.start();
}

TcpTransport::~TcpTransport() { shutdown(); }

void TcpTransport::shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;

  // Joining the reactor first makes the rest single-threaded: no handler
  // can run concurrently with this teardown (sender threads only touch the
  // mutex-guarded link fields, which we take below).
  reactor_.stop();

  if (listenFd_ >= 0) {
    reactor_.remove(listenFd_);
    ::close(listenFd_);
    listenFd_ = -1;
  }
  for (auto& [fd, conn] : inConns_) {
    reactor_.remove(conn->fd);
    ::close(conn->fd);
  }
  inConns_.clear();

  std::size_t droppedQueued = 0;
  for (auto& [id, link] : outLinks_) {
    // Close under the link mutex so an in-progress inline send() can
    // never race the fd teardown.
    std::scoped_lock lock(link->mutex);
    if (link->fd >= 0) {
      if (link->registered) reactor_.remove(link->fd);
      ::close(link->fd);
      link->fd = -1;
      link->registered = false;
    }
    link->inflight.clear();
    link->wireIdle = false;
    link->inlinePending = false;
    link->inlineBody = Bytes();
    link->state = OutLink::State::Failed;
    link->failReason = "transport shut down";
    droppedQueued += link->queue.size();
    link->queue.clear();
    link->queuedBytes = 0;
  }
  if (droppedQueued > 0) {
    metricWriteQueueDepth_.sub(static_cast<std::int64_t>(droppedQueued));
  }

  {
    // Undelivered envelopes are discarded here, and the shared queue-depth
    // gauge gives their contribution back: restarting a transport in the
    // same process must not leave the gauge drifting upward forever.
    std::scoped_lock lock(inboxMutex_);
    if (!inbox_.empty()) {
      metricQueueDepth_.sub(static_cast<std::int64_t>(inbox_.size()));
      inbox_.clear();
    }
  }
  inboxCv_.notify_all();
}

// ---------------------------------------------------------------------------
// Accept path
// ---------------------------------------------------------------------------

void TcpTransport::acceptReady(std::uint32_t) {
  for (;;) {
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd = ::accept4(listenFd_, reinterpret_cast<sockaddr*>(&peer),
                             &len, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      const int err = errno;
      if (err == EAGAIN || err == EWOULDBLOCK) return;
      if (err == EINTR) continue;
      acceptRetries_.fetch_add(1);
      metricAcceptRetries_.inc();
      if (err == ECONNABORTED || err == EPROTO) {
        // The connection died between SYN and accept(); the listener is
        // fine.  (The pre-reactor transport returned here, permanently
        // killing the node's ability to accept.)
        continue;
      }
      // Resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) or anything
      // unexpected: pause briefly and retry rather than dying.
      PRIVTOPK_LOG_WARN("tcp accept failed (retrying): ",
                        std::strerror(err));
      pauseAcceptFor(kAcceptBackoff);
      return;
    }
    if (injectAcceptErrorsLeft_ > 0) {
      // Test seam: behave as if accept() had returned ECONNABORTED, then
      // take the same backoff path a resource failure would.
      --injectAcceptErrorsLeft_;
      acceptRetries_.fetch_add(1);
      metricAcceptRetries_.inc();
      ::close(fd);
      pauseAcceptFor(kConnectRetryDelay);
      return;
    }
    setTcpNoDelay(fd);
    auto conn = std::make_unique<InConn>();
    conn->fd = fd;
    InConn* raw = conn.get();
    // The whole inbound handshake (hello + optional DH) runs under the
    // same deadline the dialer applies to its side.
    conn->deadlineTimer =
        reactor_.runAfter(options_.connectTimeout, [this, raw] {
          raw->deadlineTimer = 0;
          PRIVTOPK_LOG_WARN("tcp inbound handshake timed out");
          closeInConn(raw);
        });
    inConns_.emplace(fd, std::move(conn));
    reactor_.add(fd, EPOLLIN, [this, raw](std::uint32_t ev) {
      inConnReady(raw, ev);
    });
  }
}

void TcpTransport::pauseAcceptFor(std::chrono::milliseconds backoff) {
  if (acceptPaused_) return;
  acceptPaused_ = true;
  reactor_.remove(listenFd_);
  reactor_.runAfter(backoff, [this] {
    acceptPaused_ = false;
    if (listenFd_ < 0) return;
    reactor_.add(listenFd_, EPOLLIN, [this](std::uint32_t ev) {
      acceptReady(ev);
    });
  });
}

void TcpTransport::inConnReady(InConn* conn, std::uint32_t events) {
  try {
    if ((events & EPOLLOUT) != 0 && conn->replyPending) flushInReply(conn);
    if ((events & EPOLLIN) != 0 || (events & (EPOLLERR | EPOLLHUP)) != 0) {
      const bool open = conn->reader.pump(conn->fd, [&](Bytes&& frame) {
        return handleInFrame(conn, std::move(frame));
      });
      if (!open) closeInConn(conn);
    }
  } catch (const Error& e) {
    if (!shutdown_.load()) {
      PRIVTOPK_LOG_WARN("tcp inbound connection dropped: ", e.what());
    }
    closeInConn(conn);
  }
}

bool TcpTransport::handleInFrame(InConn* conn, Bytes&& frame) {
  switch (conn->phase) {
    case InConn::Phase::AwaitHello: {
      if (frame.size() != 4) {
        handshakeRejected_.fetch_add(1);
        metricHandshakeRejected_.inc();
        throw TransportError("malformed hello frame");
      }
      const NodeId from = decodeLe32(frame.data());
      if (peers_.find(from) == peers_.end()) {
        // An id outside the address book never reaches the inbox: before
        // this check a spoofed hello flowed straight up to NodeService.
        handshakeRejected_.fetch_add(1);
        metricHandshakeRejected_.inc();
        throw TransportError("rejected hello claiming unknown node " +
                             std::to_string(from));
      }
      conn->from = from;
      if (options_.encrypt) {
        conn->phase = InConn::Phase::AwaitDhHello;
      } else {
        conn->phase = InConn::Phase::Streaming;
        if (conn->deadlineTimer != 0) {
          reactor_.cancel(conn->deadlineTimer);
          conn->deadlineTimer = 0;
        }
      }
      return true;
    }
    case InConn::Phase::AwaitDhHello: {
      // Responder side of the handshake: read the initiator's public
      // value, answer with ours.
      Rng rng(splitmix64(options_.keySeed ^
                         (static_cast<std::uint64_t>(self_) << 32) ^
                         conn->from ^ 0xACCE55ULL));
      crypto::SecureHandshake hs(crypto::SecureHandshake::Role::Responder,
                                 *options_.group, rng);
      Bytes hello = hs.localHello();
      conn->reply = Frame{lenHeader(hello.size()), std::move(hello)};
      conn->replyOff = 0;
      conn->replyPending = true;
      conn->session =
          std::make_unique<crypto::SecureSession>(hs.deriveSession(frame));
      flushInReply(conn);
      conn->phase = InConn::Phase::Streaming;
      if (conn->deadlineTimer != 0) {
        reactor_.cancel(conn->deadlineTimer);
        conn->deadlineTimer = 0;
      }
      return true;
    }
    case InConn::Phase::Streaming: {
      Bytes payload =
          conn->session ? conn->session->open(frame) : std::move(frame);
      deliver(conn->from, std::move(payload));
      return true;
    }
  }
  return true;
}

void TcpTransport::flushInReply(InConn* conn) {
  while (conn->replyPending) {
    iovec iov[2];
    int cnt = 0;
    if (conn->replyOff < 4) {
      iov[cnt].iov_base = conn->reply.header.data() + conn->replyOff;
      iov[cnt].iov_len = 4 - conn->replyOff;
      ++cnt;
    }
    const std::size_t bodyOff = conn->replyOff > 4 ? conn->replyOff - 4 : 0;
    if (conn->reply.body.size() > bodyOff) {
      iov[cnt].iov_base = conn->reply.body.data() + bodyOff;
      iov[cnt].iov_len = conn->reply.body.size() - bodyOff;
      ++cnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(cnt);
    // sendmsg, not writev: MSG_NOSIGNAL turns a dead peer into an error
    // instead of a process-killing SIGPIPE.
    const ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        reactor_.modify(conn->fd, EPOLLIN | EPOLLOUT);
        return;
      }
      throw TransportError(std::string("handshake reply write failed: ") +
                           std::strerror(errno));
    }
    conn->replyOff += static_cast<std::size_t>(n);
    if (conn->replyOff >= 4 + conn->reply.body.size()) {
      conn->replyPending = false;
      conn->reply.body.clear();
      reactor_.modify(conn->fd, EPOLLIN);
    }
  }
}

void TcpTransport::closeInConn(InConn* conn) {
  if (conn->deadlineTimer != 0) {
    reactor_.cancel(conn->deadlineTimer);
    conn->deadlineTimer = 0;
  }
  const int fd = conn->fd;
  reactor_.remove(fd);
  ::close(fd);
  inConns_.erase(fd);  // frees conn
}

void TcpTransport::deliver(NodeId from, Bytes&& payload) {
  messagesReceived_.fetch_add(1);
  bytesReceived_.fetch_add(payload.size());
  metricMessagesReceived_.inc();
  metricBytesReceived_.inc(payload.size());
  {
    std::scoped_lock lock(inboxMutex_);
    inbox_.push_back(Envelope{from, self_, std::move(payload)});
    metricQueueDepth_.add(1);
  }
  inboxCv_.notify_all();
}

// ---------------------------------------------------------------------------
// Outgoing links
// ---------------------------------------------------------------------------

void TcpTransport::send(NodeId from, NodeId to, const Bytes& payload) {
  if (from != self_) {
    throw TransportError("TcpTransport: can only send as self");
  }
  if (shutdown_.load()) throw TransportError("TcpTransport: shut down");
  const auto peerIt = peers_.find(to);
  if (peerIt == peers_.end()) {
    throw TransportError("TcpTransport: unknown peer " + std::to_string(to));
  }
  const std::size_t wireSize =
      payload.size() + (options_.encrypt ? kSealOverhead : 0);
  if (wireSize > kMaxFrame) {
    // A caller error, not a link failure: the link stays healthy.
    metricSendErrors_.inc();
    throw TransportError("TcpTransport: payload exceeds kMaxFrame (" +
                         std::to_string(payload.size()) + " bytes)");
  }

  OutLink* link = outLinks_.find(to)->second.get();
  bool kick = false;
  bool inlined = false;
  std::string inlineFailure;
  {
    std::scoped_lock lock(link->mutex);
    switch (link->state) {
      case OutLink::State::Failed: {
        // Surface the failure the reactor recorded and re-arm the slot:
        // the NEXT send dials fresh.  This is how asynchronous link death
        // still feeds the service layer's dead-successor detection.
        const std::string reason = link->failReason;
        link->state = OutLink::State::Idle;
        metricSendErrors_.inc();
        throw TransportError("TcpTransport: link to " + std::to_string(to) +
                             " failed: " + reason);
      }
      case OutLink::State::Idle:
        link->state = OutLink::State::Connecting;
        if (link->everFailed) metricReconnects_.inc();
        break;
      case OutLink::State::Connecting:
      case OutLink::State::Established:
        break;
    }

    // Inline fast path: an Established plaintext link with nothing in
    // flight and nothing queued writes straight from the caller thread -
    // one sendmsg, no reactor wakeup, no queue latency.  The mutex makes
    // this safe: failLink/shutdown close the fd under it, the reactor
    // only writes when wireIdle is false, and concurrent senders
    // serialize here so FIFO order holds.  Encrypted links always take
    // the queue (sealing mutates the session's sequence counter, which is
    // reactor-thread state).
    if (!options_.encrypt && link->state == OutLink::State::Established &&
        link->wireIdle && link->queue.empty() && link->fd >= 0) {
      const std::array<std::uint8_t, 4> header = lenHeader(payload.size());
      iovec iov[2];
      iov[0].iov_base = const_cast<std::uint8_t*>(header.data());
      iov[0].iov_len = header.size();
      iov[1].iov_base = const_cast<std::uint8_t*>(payload.data());
      iov[1].iov_len = payload.size();
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = payload.empty() ? 1 : 2;
      ssize_t n = 0;
      do {
        n = ::sendmsg(link->fd, &msg, MSG_NOSIGNAL);
      } while (n < 0 && errno == EINTR);
      const std::size_t total = header.size() + payload.size();
      if (n == static_cast<ssize_t>(total)) {
        inlined = true;  // fully on the wire; the link stays idle
      } else if (n >= 0) {
        // Partial write: park the remainder for the reactor to finish
        // ahead of any frames queued after it.
        link->inlinePending = true;
        link->inlineHeader = header;
        link->inlineBody = payload;
        link->inlineOff = static_cast<std::size_t>(n);
        link->wireIdle = false;
        inlined = true;
        if (!link->kickPending) {
          link->kickPending = true;
          kick = true;
        }
      } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel buffer full: fall through to the queued slow path.
        link->wireIdle = false;
      } else {
        // Socket error: have the reactor tear the link down (it owns the
        // registration) and surface the failure to this caller now.
        link->wireIdle = false;
        inlineFailure = std::strerror(errno);
      }
    }

    if (!inlined && inlineFailure.empty()) {
      if (link->queue.size() >= options_.maxQueuedFramesPerPeer ||
          link->queuedBytes + payload.size() >
              options_.maxQueuedBytesPerPeer) {
        metricOverloadRejected_.inc();
        throw OverloadError(
            "TcpTransport: write queue to " + std::to_string(to) +
                " is full (" + std::to_string(link->queue.size()) +
                " frames)",
            std::chrono::milliseconds(10));
      }
      link->wireIdle = false;
      link->queue.push_back(payload);
      link->queuedBytes += payload.size();
      if (!link->kickPending) {
        link->kickPending = true;
        kick = true;
      }
    }
  }
  if (!inlineFailure.empty()) {
    reactor_.post([this, link, inlineFailure] {
      failLink(link, "inline write failed: " + inlineFailure);
    });
    metricSendErrors_.inc();
    throw TransportError("TcpTransport: link to " + std::to_string(to) +
                         " failed: inline write failed: " + inlineFailure);
  }
  if (inlined) {
    metricInlineWrites_.inc();
  } else {
    metricWriteQueueDepth_.add(1);
  }
  if (kick) {
    reactor_.post([this, link] { kickLink(link); });
  }
  messagesSent_.fetch_add(1);
  bytesSent_.fetch_add(payload.size());
  metricMessagesSent_.inc();
  metricBytesSent_.inc(payload.size());
}

void TcpTransport::kickLink(OutLink* link) {
  bool needConnect = false;
  {
    std::scoped_lock lock(link->mutex);
    link->kickPending = false;
    switch (link->state) {
      case OutLink::State::Connecting:
        needConnect = link->fd < 0 && link->retryTimer == 0;
        break;
      case OutLink::State::Established:
        break;
      case OutLink::State::Idle:
      case OutLink::State::Failed:
        return;  // nothing in flight; a later send re-arms
    }
  }
  if (needConnect) {
    startConnect(link, /*freshDeadline=*/true);
  } else {
    drainLink(link);
  }
}

void TcpTransport::startConnect(OutLink* link, bool freshDeadline) {
  if (shutdown_.load()) return;
  const TcpPeer& peer = peers_.find(link->peer)->second;

  if (freshDeadline) {
    link->deadline = Reactor::Clock::now() + options_.connectTimeout;
    link->deadlineTimer = reactor_.runAt(link->deadline, [this, link] {
      link->deadlineTimer = 0;
      bool stillConnecting = false;
      {
        std::scoped_lock lock(link->mutex);
        stillConnecting = link->state == OutLink::State::Connecting;
      }
      if (stillConnecting) {
        failLink(link, "connect/handshake to " + std::to_string(link->peer) +
                           " timed out");
      }
    });
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    failLink(link, "bad peer host " + peer.host);
    return;
  }
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    failLink(link, "socket() failed");
    return;
  }
  setTcpNoDelay(fd);
  if (options_.sendBufferBytes > 0) {
    setSendBuffer(fd, options_.sendBufferBytes);
  }
  link->fd = fd;

  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                           sizeof addr);
  if (rc == 0) {
    reactor_.add(fd, EPOLLIN, [this, link](std::uint32_t ev) {
      outReady(link, ev);
    });
    link->registered = true;
    onConnected(link);
    return;
  }
  if (errno == EINPROGRESS) {
    link->connectPending = true;
    reactor_.add(fd, EPOLLOUT, [this, link](std::uint32_t ev) {
      outReady(link, ev);
    });
    link->registered = true;
    return;
  }
  scheduleConnectRetry(link, std::strerror(errno));
}

void TcpTransport::scheduleConnectRetry(OutLink* link,
                                        const std::string& why) {
  if (link->fd >= 0) {
    if (link->registered) reactor_.remove(link->fd);
    ::close(link->fd);
    link->fd = -1;
    link->registered = false;
  }
  link->connectPending = false;
  if (Reactor::Clock::now() >= link->deadline) {
    failLink(link, "connect to " + std::to_string(link->peer) +
                       " timed out: " + why);
    return;
  }
  // Retry while the peer's listener comes up, under the cycle deadline.
  link->retryTimer = reactor_.runAfter(kConnectRetryDelay, [this, link] {
    link->retryTimer = 0;
    startConnect(link, /*freshDeadline=*/false);
  });
}

void TcpTransport::outReady(OutLink* link, std::uint32_t events) {
  if (link->fd < 0) return;
  if (link->connectPending) {
    if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) == 0) return;
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(link->fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      scheduleConnectRetry(link, std::strerror(err));
      return;
    }
    onConnected(link);
    return;
  }
  if ((events & EPOLLIN) != 0 || (events & (EPOLLERR | EPOLLHUP)) != 0) {
    readLink(link);
    if (link->fd < 0) return;  // the read evicted the link
  }
  if ((events & EPOLLOUT) != 0) drainLink(link);
}

void TcpTransport::onConnected(OutLink* link) {
  link->connectPending = false;
  reactor_.modify(link->fd, EPOLLIN);
  link->wantWrite = false;

  // Preload the identification hello (and, when encrypting, our DH hello)
  // ahead of any queued data frames.
  Bytes id(4);
  for (int i = 0; i < 4; ++i) {
    id[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(self_ >> (8 * i));
  }
  link->inflight.push_back(Frame{lenHeader(id.size()), std::move(id)});
  if (options_.encrypt) {
    Rng rng(splitmix64(options_.keySeed ^
                       (static_cast<std::uint64_t>(self_) << 32) ^
                       link->peer ^ 0x1417ULL));
    link->handshake = std::make_unique<crypto::SecureHandshake>(
        crypto::SecureHandshake::Role::Initiator, *options_.group, rng);
    Bytes hello = link->handshake->localHello();
    link->inflight.push_back(Frame{lenHeader(hello.size()), std::move(hello)});
    link->awaitingHandshake = true;
  } else {
    markEstablished(link);
  }
  drainLink(link);
}

void TcpTransport::markEstablished(OutLink* link) {
  if (link->deadlineTimer != 0) {
    reactor_.cancel(link->deadlineTimer);
    link->deadlineTimer = 0;
  }
  std::scoped_lock lock(link->mutex);
  if (link->state == OutLink::State::Connecting) {
    link->state = OutLink::State::Established;
  }
}

void TcpTransport::readLink(OutLink* link) {
  try {
    const bool open = link->reader.pump(link->fd, [&](Bytes&& frame) {
      if (link->awaitingHandshake) {
        link->session = std::make_unique<crypto::SecureSession>(
            link->handshake->deriveSession(frame));
        link->handshake.reset();
        link->awaitingHandshake = false;
        markEstablished(link);
        drainLink(link);  // sealed data frames can flow now
        return true;
      }
      // Peers never push data on the dialer's link after the handshake;
      // tolerate and discard instead of tearing the link down.
      return true;
    });
    if (!open) failLink(link, "peer closed the connection");
  } catch (const Error& e) {
    failLink(link, e.what());
  }
}

void TcpTransport::drainLink(OutLink* link) {
  if (link->fd < 0 || link->connectPending) return;
  const bool canCarryData = !options_.encrypt || link->session != nullptr;
  for (;;) {
    if (link->inflightIdx >= link->inflight.size()) {
      link->inflight.clear();
      link->inflightIdx = 0;
      link->inflightOff = 0;
      // Adopt queued frames only once the previous batch is fully on the
      // wire: swapping into `inflight` while the socket is backed up would
      // turn the bounded write queue into an unbounded staging buffer and
      // backpressure would never fire.
      if (canCarryData) {
        std::deque<Bytes> moved;
        {
          std::scoped_lock lock(link->mutex);
          // A partially inline-written frame goes first: its head bytes
          // are already on the wire, so nothing may overtake its tail.
          if (link->inlinePending) {
            link->inlinePending = false;
            link->inflight.push_back(
                Frame{link->inlineHeader, std::move(link->inlineBody)});
            link->inflightOff = link->inlineOff;
            link->inlineBody = Bytes();
            link->inlineOff = 0;
          }
          moved.swap(link->queue);
          link->queuedBytes = 0;
          // Fully drained and nothing new: open the inline fast path for
          // the next send (plaintext links only; sealing is reactor-side).
          link->wireIdle = link->inflight.empty() && moved.empty() &&
                           !options_.encrypt &&
                           link->state == OutLink::State::Established;
        }
        if (!moved.empty()) {
          metricWriteQueueDepth_.sub(static_cast<std::int64_t>(moved.size()));
          for (Bytes& payload : moved) {
            Bytes body = link->session ? link->session->seal(payload)
                                       : std::move(payload);
            link->inflight.push_back(
                Frame{lenHeader(body.size()), std::move(body)});
          }
        }
      }
      if (link->inflight.empty()) {
        setWantWrite(link, false);
        return;
      }
    }

    // Gather header+payload iovecs for as many queued frames as fit into
    // one writev: coalesced tokens for one ring successor cost one syscall.
    iovec iov[2 * kMaxWritevFrames];
    int cnt = 0;
    std::size_t frames = 0;
    std::size_t off = link->inflightOff;
    for (std::size_t i = link->inflightIdx;
         i < link->inflight.size() && frames < kMaxWritevFrames; ++i) {
      Frame& f = link->inflight[i];
      if (off < 4) {
        iov[cnt].iov_base = f.header.data() + off;
        iov[cnt].iov_len = 4 - off;
        ++cnt;
      }
      const std::size_t bodyOff = off > 4 ? off - 4 : 0;
      if (f.body.size() > bodyOff) {
        iov[cnt].iov_base = f.body.data() + bodyOff;
        iov[cnt].iov_len = f.body.size() - bodyOff;
        ++cnt;
      }
      off = 0;
      ++frames;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(cnt);
    // sendmsg, not writev: MSG_NOSIGNAL turns a dead peer into an error
    // instead of a process-killing SIGPIPE.
    const ssize_t n = ::sendmsg(link->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        setWantWrite(link, true);
        return;
      }
      failLink(link, std::string("write failed: ") + std::strerror(errno));
      return;
    }
    if (frames > 1) metricFramesCoalesced_.inc(frames - 1);
    std::size_t advanced = static_cast<std::size_t>(n);
    while (advanced > 0) {
      Frame& f = link->inflight[link->inflightIdx];
      const std::size_t total = 4 + f.body.size();
      const std::size_t remain = total - link->inflightOff;
      if (advanced >= remain) {
        advanced -= remain;
        link->inflightOff = 0;
        ++link->inflightIdx;
      } else {
        link->inflightOff += advanced;
        advanced = 0;
      }
    }
  }
}

void TcpTransport::setWantWrite(OutLink* link, bool want) {
  if (!link->registered || link->wantWrite == want) return;
  link->wantWrite = want;
  reactor_.modify(link->fd,
                  EPOLLIN | (want ? static_cast<std::uint32_t>(EPOLLOUT) : 0));
}

void TcpTransport::failLink(OutLink* link, const std::string& reason) {
  if (link->deadlineTimer != 0) {
    reactor_.cancel(link->deadlineTimer);
    link->deadlineTimer = 0;
  }
  if (link->retryTimer != 0) {
    reactor_.cancel(link->retryTimer);
    link->retryTimer = 0;
  }
  bool wasEstablished = false;
  std::size_t droppedQueued = 0;
  {
    // The fd close happens UNDER the link mutex: an inline send() holding
    // the mutex finishes its sendmsg before the fd can be closed (and
    // once `state` flips to Failed no new inline write starts).
    std::scoped_lock lock(link->mutex);
    if (link->fd >= 0) {
      if (link->registered) reactor_.remove(link->fd);
      ::close(link->fd);
      link->fd = -1;
      link->registered = false;
    }
    link->connectPending = false;
    link->awaitingHandshake = false;
    link->wantWrite = false;
    link->handshake.reset();
    link->session.reset();
    link->inflight.clear();
    link->inflightIdx = 0;
    link->inflightOff = 0;
    link->reader = FrameReader();
    link->wireIdle = false;
    link->inlinePending = false;
    link->inlineBody = Bytes();
    link->inlineOff = 0;

    wasEstablished = link->state == OutLink::State::Established;
    link->state = OutLink::State::Failed;
    link->failReason = reason;
    link->everFailed = true;
    droppedQueued = link->queue.size();
    link->queue.clear();
    link->queuedBytes = 0;
  }
  if (droppedQueued > 0) {
    metricWriteQueueDepth_.sub(static_cast<std::int64_t>(droppedQueued));
  }
  if (wasEstablished) {
    linksEvicted_.fetch_add(1);
    metricLinksEvicted_.inc();
  }
  if (!shutdown_.load()) {
    PRIVTOPK_LOG_WARN("tcp link to ", link->peer, " failed: ", reason,
                      droppedQueued > 0
                          ? " (dropped " + std::to_string(droppedQueued) +
                                " queued frames)"
                          : "");
  }
}

// ---------------------------------------------------------------------------
// Receive
// ---------------------------------------------------------------------------

std::optional<Envelope> TcpTransport::receive(
    NodeId node, std::chrono::milliseconds timeout) {
  if (node != self_) {
    throw TransportError("TcpTransport: can only receive as self");
  }
  std::unique_lock lock(inboxMutex_);
  const bool ready = inboxCv_.wait_for(lock, timeout, [&] {
    return shutdown_.load() || !inbox_.empty();
  });
  if (!ready || inbox_.empty()) {
    // A shutdown wakeup is not a timeout; only count real deadline misses.
    if (!shutdown_.load()) metricReceiveTimeouts_.inc();
    return std::nullopt;
  }
  Envelope env = std::move(inbox_.front());
  inbox_.pop_front();
  metricQueueDepth_.sub(1);
  return env;
}

}  // namespace privtopk::net
