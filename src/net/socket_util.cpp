#include "net/socket_util.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/error.hpp"

namespace privtopk::net {

void writeAll(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("socket send failed: ") +
                           std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

bool readAll(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n == 0) {
      if (got == 0) return false;
      throw TransportError("socket closed mid-read");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError(std::string("socket recv failed: ") +
                           std::strerror(errno));
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

int makeListener(std::uint16_t port, std::uint16_t& boundPort, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw TransportError(std::string("bind failed: ") + std::strerror(errno));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw TransportError("listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    boundPort = ntohs(bound.sin_port);
  }
  return fd;
}

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw TransportError(std::string("fcntl O_NONBLOCK failed: ") +
                         std::strerror(errno));
  }
}

void setTcpNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void setSendBuffer(int fd, int bytes) {
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes);
}

}  // namespace privtopk::net
