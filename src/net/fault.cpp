#include "net/fault.hpp"

#include <algorithm>
#include <charconv>
#include <thread>

#include "common/args.hpp"
#include "common/logging.hpp"

namespace privtopk::net {

namespace {

const obs::Labels kFaultLabels{{"transport", "fault"}};

/// Whole-token unsigned parse: rejects empty text and trailing garbage, so
/// "50x" is an error naming the token, not a silent 50.
std::size_t parseCount(const std::string& text, const std::string& clause) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || text.empty()) {
    throw ConfigError("fault spec clause '" + clause + "': bad count '" +
                      text + "'");
  }
  return static_cast<std::size_t>(value);
}

NodeId parseNode(const std::string& text, const std::string& clause) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || text.empty()) {
    throw ConfigError("fault spec clause '" + clause + "': bad node id '" +
                      text + "'");
  }
  return static_cast<NodeId>(value);
}

/// Parses "F->T" into a node pair.
std::pair<NodeId, NodeId> parseLink(const std::string& text,
                                    const std::string& clause) {
  const auto arrow = text.find("->");
  if (arrow == std::string::npos) {
    throw ConfigError("fault spec clause '" + clause +
                      "': expected FROM->TO link, got '" + text + "'");
  }
  return {parseNode(text.substr(0, arrow), clause),
          parseNode(text.substr(arrow + 2), clause)};
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::string normalized = text;
  std::replace(normalized.begin(), normalized.end(), ';', ',');
  for (const std::string& clause : splitString(normalized, ',')) {
    if (clause.empty()) continue;
    const auto colon = clause.find(':');
    if (colon == std::string::npos) {
      throw ConfigError("fault spec clause '" + clause +
                        "': expected kind:args");
    }
    const std::string kind = clause.substr(0, colon);
    const std::string args = clause.substr(colon + 1);
    if (kind == "drop") {
      const auto lastColon = args.rfind(':');
      if (lastColon == std::string::npos) {
        throw ConfigError("fault spec clause '" + clause +
                          "': expected drop:FROM->TO:N");
      }
      const auto [from, to] = parseLink(args.substr(0, lastColon), clause);
      const std::size_t nth = parseCount(args.substr(lastColon + 1), clause);
      if (nth == 0) {
        throw ConfigError("fault spec clause '" + clause +
                          "': drop index is 1-based");
      }
      spec.drops.push_back({from, to, nth});
    } else if (kind == "delay") {
      const auto lastColon = args.rfind(':');
      if (lastColon == std::string::npos) {
        throw ConfigError("fault spec clause '" + clause +
                          "': expected delay:FROM->TO:MS");
      }
      const auto [from, to] = parseLink(args.substr(0, lastColon), clause);
      const std::size_t ms = parseCount(args.substr(lastColon + 1), clause);
      spec.delays.push_back(
          {from, to, std::chrono::milliseconds(static_cast<long>(ms))});
    } else if (kind == "crash") {
      const auto at = args.find('@');
      if (at == std::string::npos) {
        throw ConfigError("fault spec clause '" + clause +
                          "': expected crash:NODE@N");
      }
      FaultSpec::Crash crash;
      crash.node = parseNode(args.substr(0, at), clause);
      crash.afterSends = parseCount(args.substr(at + 1), clause);
      spec.crashes.push_back(crash);
    } else {
      throw ConfigError("fault spec clause '" + clause + "': unknown kind '" +
                        kind + "' (drop|delay|crash)");
    }
  }
  return spec;
}

std::string FaultSpec::toString() const {
  std::vector<std::string> parts;
  for (const auto& d : drops) {
    parts.push_back("drop:" + std::to_string(d.from) + "->" +
                    std::to_string(d.to) + ":" + std::to_string(d.nth));
  }
  for (const auto& d : delays) {
    parts.push_back("delay:" + std::to_string(d.from) + "->" +
                    std::to_string(d.to) + ":" +
                    std::to_string(d.delay.count()));
  }
  for (const auto& c : crashes) {
    parts.push_back("crash:" + std::to_string(c.node) + "@" +
                    std::to_string(c.afterSends));
  }
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += ",";
    out += parts[i];
  }
  return out;
}

FaultState::FaultState(FaultSpec spec) : spec_(std::move(spec)) {
  for (const auto& crash : spec_.crashes) {
    if (crash.afterSends == 0) crashed_.insert(crash.node);
  }
}

bool FaultState::onSend(NodeId from, NodeId to,
                        std::chrono::milliseconds& delayOut) {
  std::scoped_lock lock(mutex_);
  delayOut = std::chrono::milliseconds(0);
  if (crashed_.contains(from)) {
    throw TransportError("fault: node " + std::to_string(from) +
                         " is crashed");
  }
  // Scheduled crash: the node dies once its send budget is exhausted.
  const std::size_t sent = ++nodeSendCount_[from];
  for (const auto& crash : spec_.crashes) {
    if (crash.node == from && sent > crash.afterSends) {
      crashed_.insert(from);
      throw TransportError("fault: node " + std::to_string(from) +
                           " crashed after " +
                           std::to_string(crash.afterSends) + " sends");
    }
  }
  if (crashed_.contains(to)) {
    throw TransportError("fault: peer " + std::to_string(to) +
                         " is unreachable (crashed)");
  }
  const std::size_t nth = ++linkSendCount_[{from, to}];
  for (const auto& drop : spec_.drops) {
    if (drop.from == from && drop.to == to && drop.nth == nth) {
      ++dropsInjected_;
      return true;
    }
  }
  for (const auto& delay : spec_.delays) {
    if (delay.from == from && delay.to == to &&
        delay.delay.count() > 0) {
      ++delaysInjected_;
      delayOut = delay.delay;
      break;
    }
  }
  return false;
}

bool FaultState::isCrashed(NodeId node) const {
  std::scoped_lock lock(mutex_);
  return crashed_.contains(node);
}

void FaultState::crash(NodeId node) {
  std::scoped_lock lock(mutex_);
  crashed_.insert(node);
}

void FaultState::revive(NodeId node) {
  std::scoped_lock lock(mutex_);
  crashed_.erase(node);
  // A revived node models a relaunched process: its fail-stop schedule has
  // fired and must not re-trigger on the next send.
  std::erase_if(spec_.crashes,
                [node](const FaultSpec::Crash& c) { return c.node == node; });
}

std::size_t FaultState::dropsInjected() const {
  std::scoped_lock lock(mutex_);
  return dropsInjected_;
}

std::size_t FaultState::delaysInjected() const {
  std::scoped_lock lock(mutex_);
  return delaysInjected_;
}

FaultInjectingTransport::FaultInjectingTransport(Transport& inner,
                                                 FaultSpec spec)
    : FaultInjectingTransport(inner,
                              std::make_shared<FaultState>(std::move(spec))) {}

FaultInjectingTransport::FaultInjectingTransport(
    Transport& inner, std::shared_ptr<FaultState> state)
    : inner_(&inner), state_(std::move(state)),
      metricDropped_(
          obs::counter("privtopk.transport.faults_dropped", kFaultLabels)),
      metricDelayed_(
          obs::counter("privtopk.transport.faults_delayed", kFaultLabels)),
      metricCrashRejects_(
          obs::counter("privtopk.transport.faults_crash_rejects",
                       kFaultLabels)) {}

void FaultInjectingTransport::send(NodeId from, NodeId to,
                                   const Bytes& payload) {
  std::chrono::milliseconds delay{0};
  bool dropped = false;
  try {
    dropped = state_->onSend(from, to, delay);
  } catch (const TransportError&) {
    metricCrashRejects_.inc();
    throw;
  }
  if (dropped) {
    metricDropped_.inc();
    PRIVTOPK_LOG_WARN_C("fault", "dropping message ", from, " -> ", to);
    return;  // swallowed: the sender believes the send succeeded
  }
  if (delay.count() > 0) {
    metricDelayed_.inc();
    // Sleeping in the caller thread preserves per-sender FIFO order.
    std::this_thread::sleep_for(delay);
  }
  inner_->send(from, to, payload);
}

std::optional<Envelope> FaultInjectingTransport::receive(
    NodeId node, std::chrono::milliseconds timeout) {
  if (state_->isCrashed(node)) {
    // A dead process reads nothing; burn the timeout so callers polling in
    // a loop do not spin hot.
    std::this_thread::sleep_for(timeout);
    return std::nullopt;
  }
  return inner_->receive(node, timeout);
}

void FaultInjectingTransport::shutdown() { inner_->shutdown(); }

}  // namespace privtopk::net
