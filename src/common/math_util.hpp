// Small mathematical helpers referenced by the paper's analysis section.

#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace privtopk {

/// The nth harmonic number H_n = sum_{i=1..n} 1/i.  The paper's Eq. 5 uses
/// the bound H_n > ln n to lower-bound the naive protocol's average LoP.
[[nodiscard]] inline double harmonicNumber(std::size_t n) {
  double h = 0.0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

/// Numerically safe power p0^r * d^(r(r-1)/2) used by Eq. 3/4; computed in
/// log space to avoid underflow for large r.
[[nodiscard]] inline double errorTermLog(double p0, double d, double r) {
  // p0 == 0 or d == 0 drive the term to 0 for any r >= 1 (r >= 2 for d).
  if (p0 <= 0.0) return -std::numeric_limits<double>::infinity();
  double lg = r * std::log(p0);
  if (d <= 0.0) {
    if (r >= 2.0) return -std::numeric_limits<double>::infinity();
    return lg;
  }
  lg += (r * (r - 1.0) / 2.0) * std::log(d);
  return lg;
}

/// Clamps x into [lo, hi].
[[nodiscard]] inline double clampDouble(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace privtopk
