// Streaming statistics accumulators used by the experiment harnesses.

#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace privtopk {

/// Welford-style streaming mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const {
    return n_ > 0 ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ > 0 ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores all samples; supports exact quantiles.  Use for the modest sample
/// counts of the experiment harnesses (hundreds of trials).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (double s : samples_) sum += s;
    return sum / static_cast<double>(samples_.size());
  }

  /// Exact q-quantile (nearest-rank, q in [0,1]).  Requires count() > 0.
  [[nodiscard]] double quantile(double q) {
    ensureSorted();
    const auto n = samples_.size();
    auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
    rank = std::clamp<std::size_t>(rank, 1, n);
    return samples_[rank - 1];
  }

  [[nodiscard]] double min() {
    ensureSorted();
    return samples_.front();
  }
  [[nodiscard]] double max() {
    ensureSorted();
    return samples_.back();
  }

 private:
  void ensureSorted() {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  std::vector<double> samples_;
  bool sorted_ = true;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp to the
/// edge buckets.  Used for latency and LoP distributions in the benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void add(double x) {
    const auto b = bucketOf(x);
    ++counts_[b];
    ++total_;
  }

  [[nodiscard]] std::size_t bucketOf(double x) const {
    if (x <= lo_) return 0;
    if (x >= hi_) return counts_.size() - 1;
    const double frac = (x - lo_) / (hi_ - lo_);
    auto b = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
    return std::min(b, counts_.size() - 1);
  }

  [[nodiscard]] std::size_t count(std::size_t bucket) const { return counts_.at(bucket); }
  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Lower edge of a bucket.
  [[nodiscard]] double edge(std::size_t bucket) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(bucket) /
                     static_cast<double>(counts_.size());
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace privtopk
