#include "common/args.hpp"

#include <charconv>

namespace privtopk {

std::vector<std::string> splitString(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

ArgParser::ArgParser(int argc, const char* const* argv,
                     const std::set<std::string>& allowedFlags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);

    std::optional<std::string> value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.resize(eq);
    }
    if (!allowedFlags.contains(arg)) {
      throw ConfigError("unknown flag --" + arg);
    }
    if (!value && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    }
    if (values_.contains(arg)) {
      throw ConfigError("duplicate flag --" + arg);
    }
    values_[arg] = std::move(value);
  }
}

bool ArgParser::has(const std::string& flag) const {
  return values_.contains(flag);
}

std::string ArgParser::getString(const std::string& flag,
                                 const std::string& fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  if (!it->second) {
    throw ConfigError("flag --" + flag + " requires a value");
  }
  return *it->second;
}

std::int64_t ArgParser::getInt(const std::string& flag,
                               std::int64_t fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  if (!it->second) throw ConfigError("flag --" + flag + " requires a value");
  const std::string& s = *it->second;
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw ConfigError("flag --" + flag + ": '" + s + "' is not an integer");
  }
  return v;
}

double ArgParser::getDouble(const std::string& flag, double fallback) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) return fallback;
  if (!it->second) throw ConfigError("flag --" + flag + " requires a value");
  try {
    std::size_t pos = 0;
    const double v = std::stod(*it->second, &pos);
    if (pos != it->second->size()) throw std::invalid_argument("");
    return v;
  } catch (const std::exception&) {
    throw ConfigError("flag --" + flag + ": '" + *it->second +
                      "' is not a number");
  }
}

std::vector<std::string> ArgParser::getList(const std::string& flag) const {
  const std::string raw = getString(flag);
  if (raw.empty()) return {};
  return splitString(raw, ',');
}

}  // namespace privtopk
