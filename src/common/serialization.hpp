// Endian-safe binary serialization used by the wire protocol.
//
// All multi-byte integers are encoded little-endian regardless of host
// order.  Variable-length quantities (container sizes) use LEB128-style
// varints to keep round tokens small.  Readers validate every length
// against the remaining buffer and throw ProtocolError on malformed input
// so a corrupt or hostile frame can never read out of bounds.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace privtopk {

using Bytes = std::vector<std::uint8_t>;

/// Append-only binary writer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void writeU8(std::uint8_t v) { buf_.push_back(v); }

  void writeU16(std::uint16_t v) { writeLE(v); }
  void writeU32(std::uint32_t v) { writeLE(v); }
  void writeU64(std::uint64_t v) { writeLE(v); }

  /// Signed 64-bit value, two's-complement little-endian.
  void writeI64(std::int64_t v) { writeLE(static_cast<std::uint64_t>(v)); }

  void writeF64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    writeLE(bits);
  }

  /// Unsigned LEB128 varint.
  void writeVarint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void writeBytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Length-prefixed byte string.
  void writeBlob(std::span<const std::uint8_t> data) {
    writeVarint(data.size());
    writeBytes(data);
  }

  /// Length-prefixed UTF-8 string.
  void writeString(std::string_view s) {
    writeVarint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Length-prefixed vector of signed values (the top-k vector payload).
  void writeValueVector(std::span<const std::int64_t> values) {
    writeVarint(values.size());
    for (std::int64_t v : values) writeI64(v);
  }

  [[nodiscard]] const Bytes& bytes() const { return buf_; }
  [[nodiscard]] Bytes take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void writeLE(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

/// Bounds-checked binary reader over a borrowed buffer.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t readU8() {
    need(1);
    return data_[pos_++];
  }

  [[nodiscard]] std::uint16_t readU16() { return readLE<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t readU32() { return readLE<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t readU64() { return readLE<std::uint64_t>(); }

  [[nodiscard]] std::int64_t readI64() {
    return static_cast<std::int64_t>(readLE<std::uint64_t>());
  }

  [[nodiscard]] double readF64() {
    std::uint64_t bits = readLE<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  [[nodiscard]] std::uint64_t readVarint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (shift >= 64) throw ProtocolError("varint overflow");
      std::uint8_t b = readU8();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) return v;
      shift += 7;
    }
  }

  [[nodiscard]] Bytes readBlob() {
    std::uint64_t n = readVarint();
    need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::string readString() {
    std::uint64_t n = readVarint();
    need(n);
    std::string out(reinterpret_cast<const char*>(data_.data()) + pos_, n);
    pos_ += n;
    return out;
  }

  [[nodiscard]] std::vector<std::int64_t> readValueVector() {
    std::uint64_t n = readVarint();
    // Each value occupies 8 bytes; reject sizes the buffer cannot hold.
    if (n > remaining() / 8) throw ProtocolError("value vector too long");
    std::vector<std::int64_t> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) out.push_back(readI64());
    return out;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool atEnd() const { return pos_ == data_.size(); }

 private:
  void need(std::uint64_t n) const {
    if (n > remaining()) throw ProtocolError("serialized message truncated");
  }

  template <typename T>
  [[nodiscard]] T readLE() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace privtopk
