// Exception hierarchy for the privtopk library.
//
// Following the C++ Core Guidelines (E.14) we throw purpose-designed types
// derived from std::runtime_error / std::logic_error so callers can catch
// per-category.

#pragma once

#include <chrono>
#include <stdexcept>
#include <string>

namespace privtopk {

/// Base class for all recoverable runtime failures raised by the library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Invalid configuration supplied by the caller (bad p0/d/k/domain...).
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Wire-format violation: a message could not be parsed or failed
/// authentication.
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// A transport-level failure (socket error, closed channel, peer gone).
class TransportError : public Error {
 public:
  using Error::Error;
};

/// The receiver is alive but shedding load (admission queue full, rate
/// limit exceeded).  Deliberately NOT a TransportError: the link is
/// healthy, so the right client reaction is to back off for retryAfter()
/// and resubmit, not to fail over or declare the peer dead.
class OverloadError : public Error {
 public:
  OverloadError(const std::string& what, std::chrono::milliseconds retryAfter)
      : Error(what), retryAfter_(retryAfter) {}

  /// How long the thrower suggests waiting before retrying.
  [[nodiscard]] std::chrono::milliseconds retryAfter() const {
    return retryAfter_;
  }

 private:
  std::chrono::milliseconds retryAfter_;
};

/// Cryptographic failure (handshake mismatch, MAC verification failure).
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// Raised when a query references an unknown table/attribute.
class SchemaError : public Error {
 public:
  using Error::Error;
};

}  // namespace privtopk
