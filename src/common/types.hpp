// Core value types shared by every module of the privtopk library.
//
// The paper ("Top-k Queries across Multiple Private Databases", ICDCS 2005)
// operates on integer attribute values drawn from a publicly known domain
// (the experiments use [1, 10000]).  We model a value as a signed 64-bit
// integer and a domain as a closed interval of such values.

#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace privtopk {

/// An attribute value.  The protocol compares and transmits these.
using Value = std::int64_t;

/// Identifies a participating node (private database).  Nodes are numbered
/// 0..n-1 by join order; their *ring position* is a separate concept owned
/// by sim::RingTopology.
using NodeId = std::uint32_t;

/// A protocol round counter.  Round numbering is 1-based as in the paper
/// (the randomization probability for round r is p0 * d^(r-1)).
using Round = std::uint32_t;

/// An ordered multiset of the current top-k values, sorted descending
/// (index 0 is the largest, index k-1 the smallest, matching the paper's
/// G[1..k] notation shifted to 0-based indexing).
using TopKVector = std::vector<Value>;

/// The publicly known, closed value domain [min, max] that all attribute
/// values belong to.  Publicly known per the paper's problem statement.
struct Domain {
  Value min = 1;
  Value max = 10000;

  constexpr Domain() = default;
  constexpr Domain(Value lo, Value hi) : min(lo), max(hi) {
    if (lo > hi) throw std::invalid_argument("Domain: min > max");
  }

  /// Number of distinct values in the domain.
  [[nodiscard]] constexpr std::uint64_t size() const {
    return static_cast<std::uint64_t>(max - min) + 1;
  }

  [[nodiscard]] constexpr bool contains(Value v) const {
    return v >= min && v <= max;
  }

  friend constexpr bool operator==(const Domain&, const Domain&) = default;
};

/// The domain used throughout the paper's experimental section.
inline constexpr Domain kPaperDomain{1, 10000};

/// Renders a top-k vector as "[a, b, c]" for logs and error messages.
std::string toString(const TopKVector& v);

/// Multiset intersection size of two value vectors (order-insensitive).
/// Used by the precision metric (|R ∩ TopK|/k) and the LoP estimator.
[[nodiscard]] std::size_t multisetIntersectionSize(const TopKVector& a,
                                                   const TopKVector& b);

}  // namespace privtopk
