// Deterministic fan-out of independent loop iterations across threads.
//
// The Monte-Carlo harnesses repeat an experiment `trials` times; every
// trial derives its own RNG streams from (seed, trial index), so the
// iterations are embarrassingly parallel.  parallelFor distributes the
// index space over a transient worker pool with dynamic (atomic-counter)
// scheduling: which thread runs which index is unspecified, so callers
// that need bit-identical results for ANY thread count must (a) write each
// iteration's output to its own index-addressed slot and (b) reduce the
// slots in index order on the calling thread afterwards.  The harnesses in
// bench/support/experiment.cpp follow exactly that pattern.

#pragma once

#include <cstddef>
#include <functional>

namespace privtopk {

/// Environment variable consulted by resolveThreadCount for the bench and
/// CLI harnesses when no explicit thread count is given.
inline constexpr const char* kBenchThreadsEnvVar = "PRIVTOPK_BENCH_THREADS";

/// Resolves a worker-thread request: a positive `requested` wins;
/// otherwise a positive integer in the `envVar` environment variable
/// (when `envVar` is non-null and set); otherwise every hardware thread
/// (at least 1).  Malformed environment values are ignored.
[[nodiscard]] std::size_t resolveThreadCount(int requested,
                                             const char* envVar = nullptr);

/// Runs body(i) for every i in [0, count) on up to `threads` workers
/// (`threads` <= 1 runs inline on the calling thread, which also
/// participates in the parallel case).  Iterations must not depend on each
/// other.  If any iteration throws, the remaining indices are abandoned,
/// all workers are joined, and the first exception is rethrown on the
/// calling thread.
void parallelFor(std::size_t threads, std::size_t count,
                 const std::function<void(std::size_t)>& body);

}  // namespace privtopk
