// Deterministic random number generation.
//
// Every stochastic component of the library (data generation, the
// randomized local algorithms, ring shuffling, latency models) draws from an
// explicitly seeded Rng so that experiments are reproducible bit-for-bit.
// Independent streams are derived from a root seed with SplitMix64 so
// components do not share state.

#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace privtopk {

/// Stateless SplitMix64 step; used for seed derivation and as a cheap
/// mixing function.  Public for testability.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// A seeded pseudo-random generator wrapping std::mt19937_64 with the
/// handful of draw shapes the library needs.  Cheap to copy; copies evolve
/// independently.
class Rng {
 public:
  /// Seeds the generator deterministically from `seed`.
  explicit Rng(std::uint64_t seed = 0x5eedULL) : engine_(splitmix64(seed)) {}

  /// Derives an independent child stream; children with distinct tags are
  /// statistically uncorrelated with the parent and with each other.
  [[nodiscard]] Rng fork(std::uint64_t tag) {
    return Rng(splitmix64(engine_() ^ splitmix64(tag)));
  }

  /// Uniform integer in the closed interval [lo, hi].  Requires lo <= hi.
  [[nodiscard]] Value uniformInt(Value lo, Value hi) {
    return std::uniform_int_distribution<Value>(lo, hi)(engine_);
  }

  /// Uniform integer in the half-open interval [lo, hi).  Requires lo < hi.
  /// This is the draw shape of the paper's Algorithm 1 random branch.
  [[nodiscard]] Value uniformIntHalfOpen(Value lo, Value hi) {
    return uniformInt(lo, hi - 1);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Normal deviate.
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential deviate with the given mean (used by latency models).
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Uniform index in [0, n).  Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[index(i)]);
    }
  }

  /// Raw 64-bit draw (seed derivation, nonces in tests).
  [[nodiscard]] std::uint64_t next() { return engine_(); }

  /// Access for std <random> distribution interop.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace privtopk
