#include "common/logging.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace privtopk {
namespace detail {

LogLevel& globalLogLevel() {
  static LogLevel level = LogLevel::Warn;
  return level;
}

std::mutex& logMutex() {
  static std::mutex m;
  return m;
}

std::ostream*& logSink() {
  static std::ostream* sink = &std::clog;
  return sink;
}

bool& logTimestampsFlag() {
  static bool enabled = false;
  return enabled;
}

std::string isoTimestampNow() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const std::time_t seconds = system_clock::to_time_t(now);
  const auto millis =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, static_cast<int>(millis));
  return buffer;
}

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace detail

void setLogLevel(LogLevel level) { detail::globalLogLevel() = level; }

LogLevel logLevel() { return detail::globalLogLevel(); }

void setLogSink(std::ostream* sink) {
  std::scoped_lock lock(detail::logMutex());
  detail::logSink() = (sink != nullptr) ? sink : &std::clog;
}

void setLogTimestamps(bool enabled) { detail::logTimestampsFlag() = enabled; }

bool logTimestamps() { return detail::logTimestampsFlag(); }

}  // namespace privtopk
