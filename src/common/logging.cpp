#include "common/logging.hpp"

namespace privtopk {
namespace detail {

LogLevel& globalLogLevel() {
  static LogLevel level = LogLevel::Warn;
  return level;
}

std::mutex& logMutex() {
  static std::mutex m;
  return m;
}

std::ostream*& logSink() {
  static std::ostream* sink = &std::clog;
  return sink;
}

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

}  // namespace detail

void setLogLevel(LogLevel level) { detail::globalLogLevel() = level; }

LogLevel logLevel() { return detail::globalLogLevel(); }

void setLogSink(std::ostream* sink) {
  std::scoped_lock lock(detail::logMutex());
  detail::logSink() = (sink != nullptr) ? sink : &std::clog;
}

}  // namespace privtopk
