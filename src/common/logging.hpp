// Minimal leveled logger.
//
// The library is quiet by default (level Warn); experiment harnesses can
// raise verbosity.  The logger is process-global and thread-safe; log lines
// are assembled in a local stream and written with a single mutex-guarded
// call so concurrent transports do not interleave characters.

#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace privtopk {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

namespace detail {
LogLevel& globalLogLevel();
std::mutex& logMutex();
std::ostream*& logSink();
const char* levelName(LogLevel level);
}  // namespace detail

/// Sets the global minimum level (default Warn).
void setLogLevel(LogLevel level);
[[nodiscard]] LogLevel logLevel();

/// Redirects log output (default std::clog).  Pass nullptr to restore the
/// default sink.
void setLogSink(std::ostream* sink);

/// Writes one formatted log line if `level` is enabled.
template <typename... Args>
void logLine(LogLevel level, Args&&... args) {
  if (level < detail::globalLogLevel()) return;
  std::ostringstream os;
  os << '[' << detail::levelName(level) << "] ";
  (os << ... << std::forward<Args>(args));
  os << '\n';
  const std::string line = os.str();
  std::scoped_lock lock(detail::logMutex());
  std::ostream* sink = detail::logSink();
  (*sink) << line;
}

#define PRIVTOPK_LOG_TRACE(...) ::privtopk::logLine(::privtopk::LogLevel::Trace, __VA_ARGS__)
#define PRIVTOPK_LOG_DEBUG(...) ::privtopk::logLine(::privtopk::LogLevel::Debug, __VA_ARGS__)
#define PRIVTOPK_LOG_INFO(...) ::privtopk::logLine(::privtopk::LogLevel::Info, __VA_ARGS__)
#define PRIVTOPK_LOG_WARN(...) ::privtopk::logLine(::privtopk::LogLevel::Warn, __VA_ARGS__)
#define PRIVTOPK_LOG_ERROR(...) ::privtopk::logLine(::privtopk::LogLevel::Error, __VA_ARGS__)

}  // namespace privtopk
