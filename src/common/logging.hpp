// Minimal leveled logger.
//
// The library is quiet by default (level Warn); experiment harnesses can
// raise verbosity.  The logger is process-global and thread-safe; log lines
// are assembled in a local stream and written with a single mutex-guarded
// call so concurrent transports do not interleave characters.
//
// Two opt-in refinements, both off by default so the historical
// "[LEVEL] message" format is unchanged:
//   * setLogTimestamps(true) prefixes every line with an ISO-8601 UTC
//     wall-clock timestamp (millisecond precision);
//   * the PRIVTOPK_LOG_*_C macros tag a line with a component name,
//     rendered as "[LEVEL] [component] message", so multi-layer runs
//     (net / protocol / query / crypto) can be filtered by origin.

#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace privtopk {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

namespace detail {
LogLevel& globalLogLevel();
std::mutex& logMutex();
std::ostream*& logSink();
bool& logTimestampsFlag();
const char* levelName(LogLevel level);
/// "2026-08-07T12:34:56.789Z" for the current wall-clock instant.
std::string isoTimestampNow();
}  // namespace detail

/// Sets the global minimum level (default Warn).
void setLogLevel(LogLevel level);
[[nodiscard]] LogLevel logLevel();

/// Redirects log output (default std::clog).  Pass nullptr to restore the
/// default sink.
void setLogSink(std::ostream* sink);

/// Enables/disables the ISO-8601 UTC timestamp prefix (default off).
void setLogTimestamps(bool enabled);
[[nodiscard]] bool logTimestamps();

/// Writes one formatted log line if `level` is enabled.  `component` is
/// empty for the untagged macros.
template <typename... Args>
void logLineTagged(LogLevel level, std::string_view component,
                   Args&&... args) {
  if (level < detail::globalLogLevel()) return;
  std::ostringstream os;
  if (detail::logTimestampsFlag()) os << detail::isoTimestampNow() << ' ';
  os << '[' << detail::levelName(level) << "] ";
  if (!component.empty()) os << '[' << component << "] ";
  (os << ... << std::forward<Args>(args));
  os << '\n';
  const std::string line = os.str();
  std::scoped_lock lock(detail::logMutex());
  std::ostream* sink = detail::logSink();
  (*sink) << line;
}

template <typename... Args>
void logLine(LogLevel level, Args&&... args) {
  logLineTagged(level, std::string_view{}, std::forward<Args>(args)...);
}

#define PRIVTOPK_LOG_TRACE(...) ::privtopk::logLine(::privtopk::LogLevel::Trace, __VA_ARGS__)
#define PRIVTOPK_LOG_DEBUG(...) ::privtopk::logLine(::privtopk::LogLevel::Debug, __VA_ARGS__)
#define PRIVTOPK_LOG_INFO(...) ::privtopk::logLine(::privtopk::LogLevel::Info, __VA_ARGS__)
#define PRIVTOPK_LOG_WARN(...) ::privtopk::logLine(::privtopk::LogLevel::Warn, __VA_ARGS__)
#define PRIVTOPK_LOG_ERROR(...) ::privtopk::logLine(::privtopk::LogLevel::Error, __VA_ARGS__)

// Component-tagged variants: PRIVTOPK_LOG_WARN_C("net", "lost ", n, " msgs")
// renders as "[WARN ] [net] lost 3 msgs".
#define PRIVTOPK_LOG_TRACE_C(component, ...) ::privtopk::logLineTagged(::privtopk::LogLevel::Trace, component, __VA_ARGS__)
#define PRIVTOPK_LOG_DEBUG_C(component, ...) ::privtopk::logLineTagged(::privtopk::LogLevel::Debug, component, __VA_ARGS__)
#define PRIVTOPK_LOG_INFO_C(component, ...) ::privtopk::logLineTagged(::privtopk::LogLevel::Info, component, __VA_ARGS__)
#define PRIVTOPK_LOG_WARN_C(component, ...) ::privtopk::logLineTagged(::privtopk::LogLevel::Warn, component, __VA_ARGS__)
#define PRIVTOPK_LOG_ERROR_C(component, ...) ::privtopk::logLineTagged(::privtopk::LogLevel::Error, component, __VA_ARGS__)

}  // namespace privtopk
