#include "common/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace privtopk {

std::size_t resolveThreadCount(int requested, const char* envVar) {
  if (requested > 0) return static_cast<std::size_t>(requested);
  if (envVar != nullptr) {
    if (const char* value = std::getenv(envVar)) {
      char* end = nullptr;
      const long parsed = std::strtol(value, &end, 10);
      if (end != value && *end == '\0' && parsed > 0) {
        return static_cast<std::size_t>(parsed);
      }
    }
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? hardware : 1;
}

void parallelFor(std::size_t threads, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const std::size_t workers = std::min(std::max<std::size_t>(threads, 1), count);
  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex errorMutex;
  std::exception_ptr error;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(errorMutex);
          if (!error) error = std::current_exception();
        }
        // Park the counter past the end so every worker drains promptly.
        next.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace privtopk
