#include "common/types.hpp"

#include <algorithm>
#include <sstream>

namespace privtopk {

std::string toString(const TopKVector& v) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ", ";
    os << v[i];
  }
  os << ']';
  return os.str();
}

std::size_t multisetIntersectionSize(const TopKVector& a, const TopKVector& b) {
  TopKVector sa = a;
  TopKVector sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::size_t count = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] < sb[j]) {
      ++i;
    } else if (sa[i] > sb[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace privtopk
