// Minimal command-line argument parser for the CLI tools.
//
// Supports `--key value`, `--key=value`, bare boolean flags (`--encrypt`),
// and positional arguments.  Typed getters validate and convert; unknown
// flags are rejected up front so typos fail loudly.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace privtopk {

class ArgParser {
 public:
  /// `allowedFlags` lists every accepted --flag name (without dashes).
  /// Throws ConfigError on unknown flags or malformed input.
  ArgParser(int argc, const char* const* argv,
            const std::set<std::string>& allowedFlags);

  /// Positional arguments in order (argv[0] excluded).
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& flag) const;

  /// String value; `fallback` when absent.  Throws when the flag was given
  /// as a bare boolean.
  [[nodiscard]] std::string getString(const std::string& flag,
                                      const std::string& fallback = "") const;

  [[nodiscard]] std::int64_t getInt(const std::string& flag,
                                    std::int64_t fallback) const;
  [[nodiscard]] double getDouble(const std::string& flag,
                                 double fallback) const;
  [[nodiscard]] bool getBool(const std::string& flag) const { return has(flag); }

  /// Splits a comma-separated flag value ("a,b,c"); empty when absent.
  [[nodiscard]] std::vector<std::string> getList(const std::string& flag) const;

 private:
  std::map<std::string, std::optional<std::string>> values_;
  std::vector<std::string> positional_;
};

/// Splits `text` on `sep` (no empty-token suppression).
[[nodiscard]] std::vector<std::string> splitString(const std::string& text,
                                                   char sep);

}  // namespace privtopk
