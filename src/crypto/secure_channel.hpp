// Authenticated encryption for ring links: DH handshake -> HKDF key
// schedule -> ChaCha20 + HMAC-SHA-256 (encrypt-then-MAC) record layer.
//
// The paper notes "encryption techniques can be used so that data are
// protected on the communication channel" without prescribing one; this is
// the substitution we provide (see DESIGN.md §2).
//
// SecureSession is transport-agnostic: it seals plaintext into records and
// opens records back into plaintext.  Handshaking over an arbitrary
// byte-pipe is provided by SecureHandshake, driven by the caller (send the
// bytes of localHello(), feed the peer's hello to deriveSession()).

#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/dh.hpp"
#include "crypto/hmac.hpp"

namespace privtopk::crypto {

/// Directional key material for one established channel.
struct SessionKeys {
  ChaChaKey txKey{};
  ChaChaKey rxKey{};
  std::array<std::uint8_t, 32> txMacKey{};
  std::array<std::uint8_t, 32> rxMacKey{};
};

/// A sealed record: 8-byte sequence || ciphertext || 32-byte MAC.
class SecureSession {
 public:
  explicit SecureSession(SessionKeys keys, std::uint32_t channelId = 0)
      : keys_(keys), channelId_(channelId) {}

  /// Encrypts and authenticates `plaintext` into a record.
  [[nodiscard]] std::vector<std::uint8_t> seal(
      std::span<const std::uint8_t> plaintext);

  /// Verifies and decrypts a record.  Throws CryptoError on MAC failure,
  /// truncation, or replayed/reordered sequence numbers.
  [[nodiscard]] std::vector<std::uint8_t> open(
      std::span<const std::uint8_t> record);

  [[nodiscard]] std::uint64_t sealedCount() const { return txSeq_; }
  [[nodiscard]] std::uint64_t openedCount() const { return rxSeq_; }

 private:
  SessionKeys keys_;
  std::uint32_t channelId_;
  std::uint64_t txSeq_ = 0;
  std::uint64_t rxSeq_ = 0;
};

/// One side of an unauthenticated DH handshake.
///
///   SecureHandshake hs(role, group, rng);
///   sendBytes(hs.localHello());
///   SecureSession session = hs.deriveSession(recvBytes());
///
/// Roles must differ between the two endpoints; the role only decides the
/// key-schedule direction so both sides agree which key encrypts which way.
class SecureHandshake {
 public:
  enum class Role { Initiator, Responder };

  SecureHandshake(Role role, const DhGroup& group, Rng& rng);

  /// This side's public value, fixed-width big-endian.
  [[nodiscard]] const std::vector<std::uint8_t>& localHello() const {
    return hello_;
  }

  /// Completes the exchange with the peer's hello and derives the session.
  [[nodiscard]] SecureSession deriveSession(
      std::span<const std::uint8_t> peerHello,
      std::uint32_t channelId = 0) const;

 private:
  Role role_;
  const DhGroup& group_;
  DhKeyPair keyPair_;
  std::vector<std::uint8_t> hello_;
};

}  // namespace privtopk::crypto
