// HMAC-SHA-256 (RFC 2104) and a small HKDF-style key derivation helper.

#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "crypto/sha256.hpp"

namespace privtopk::crypto {

/// Computes HMAC-SHA-256 over `data` with `key` (any length).
[[nodiscard]] Sha256Digest hmacSha256(std::span<const std::uint8_t> key,
                                      std::span<const std::uint8_t> data);

/// Constant-time digest comparison; prevents MAC timing oracles.
[[nodiscard]] bool constantTimeEqual(std::span<const std::uint8_t> a,
                                     std::span<const std::uint8_t> b);

/// HKDF-Extract-then-Expand (RFC 5869, SHA-256), producing `length` bytes.
/// Used to derive directional channel keys from a Diffie-Hellman secret.
[[nodiscard]] std::vector<std::uint8_t> hkdfSha256(
    std::span<const std::uint8_t> inputKeyMaterial,
    std::span<const std::uint8_t> salt, std::string_view info,
    std::size_t length);

}  // namespace privtopk::crypto
