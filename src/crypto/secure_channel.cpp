#include "crypto/secure_channel.hpp"

#include <cstring>

#include "obs/metrics.hpp"

namespace privtopk::crypto {

namespace {

constexpr std::size_t kSeqLen = 8;
constexpr std::size_t kMacLen = 32;

// Cached once per process; every seal/open is then one relaxed RMW each.
struct ChannelMetrics {
  obs::Counter& handshakes = obs::counter("privtopk.crypto.handshakes");
  obs::Counter& recordsSealed = obs::counter("privtopk.crypto.records_sealed");
  obs::Counter& bytesSealed = obs::counter("privtopk.crypto.bytes_sealed");
  obs::Counter& recordsOpened = obs::counter("privtopk.crypto.records_opened");
  obs::Counter& bytesOpened = obs::counter("privtopk.crypto.bytes_opened");
  obs::Counter& openFailures = obs::counter("privtopk.crypto.open_failures");
};

ChannelMetrics& channelMetrics() {
  static ChannelMetrics metrics;
  return metrics;
}

void putSeq(std::uint64_t seq, std::uint8_t* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(seq >> (8 * i));
}

std::uint64_t getSeq(const std::uint8_t* in) {
  std::uint64_t seq = 0;
  for (int i = 0; i < 8; ++i) seq |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return seq;
}

}  // namespace

std::vector<std::uint8_t> SecureSession::seal(
    std::span<const std::uint8_t> plaintext) {
  const std::uint64_t seq = txSeq_++;
  std::vector<std::uint8_t> record(kSeqLen + plaintext.size() + kMacLen);
  putSeq(seq, record.data());

  if (!plaintext.empty()) {
    std::memcpy(record.data() + kSeqLen, plaintext.data(), plaintext.size());
  }
  chacha20XorInPlace(keys_.txKey, makeNonce(channelId_, seq), 0,
                     std::span<std::uint8_t>(record.data() + kSeqLen,
                                             plaintext.size()));

  // MAC over sequence || ciphertext (encrypt-then-MAC).
  const Sha256Digest mac = hmacSha256(
      keys_.txMacKey,
      std::span<const std::uint8_t>(record.data(), kSeqLen + plaintext.size()));
  std::memcpy(record.data() + kSeqLen + plaintext.size(), mac.data(), kMacLen);
  channelMetrics().recordsSealed.inc();
  channelMetrics().bytesSealed.inc(plaintext.size());
  return record;
}

std::vector<std::uint8_t> SecureSession::open(
    std::span<const std::uint8_t> record) {
  if (record.size() < kSeqLen + kMacLen) {
    channelMetrics().openFailures.inc();
    throw CryptoError("SecureSession::open: record truncated");
  }
  const std::size_t ctLen = record.size() - kSeqLen - kMacLen;

  const Sha256Digest expected = hmacSha256(
      keys_.rxMacKey,
      std::span<const std::uint8_t>(record.data(), kSeqLen + ctLen));
  if (!constantTimeEqual(
          expected,
          std::span<const std::uint8_t>(record.data() + kSeqLen + ctLen,
                                        kMacLen))) {
    channelMetrics().openFailures.inc();
    throw CryptoError("SecureSession::open: MAC verification failed");
  }

  const std::uint64_t seq = getSeq(record.data());
  if (seq != rxSeq_) {
    channelMetrics().openFailures.inc();
    throw CryptoError("SecureSession::open: unexpected sequence number");
  }
  ++rxSeq_;

  std::vector<std::uint8_t> plaintext(record.begin() + kSeqLen,
                                      record.begin() + kSeqLen +
                                          static_cast<long>(ctLen));
  chacha20XorInPlace(keys_.rxKey, makeNonce(channelId_, seq), 0, plaintext);
  channelMetrics().recordsOpened.inc();
  channelMetrics().bytesOpened.inc(plaintext.size());
  return plaintext;
}

SecureHandshake::SecureHandshake(Role role, const DhGroup& group, Rng& rng)
    : role_(role), group_(group), keyPair_(dhGenerate(group, rng)) {
  hello_ = keyPair_.publicKey.toBytes(group.p.bitLength() / 8);
}

SecureSession SecureHandshake::deriveSession(
    std::span<const std::uint8_t> peerHello, std::uint32_t channelId) const {
  channelMetrics().handshakes.inc();
  const BigUInt peerPublic = BigUInt::fromBytes(peerHello);
  const std::vector<std::uint8_t> secret =
      dhSharedSecret(group_, keyPair_.privateKey, peerPublic);

  // 128 bytes of key material: i2r cipher key, r2i cipher key, i2r MAC key,
  // r2i MAC key.  Both roles derive the same schedule and pick directions
  // according to their role.
  const std::vector<std::uint8_t> material =
      hkdfSha256(secret, {}, "privtopk-secure-channel-v1", 128);

  SessionKeys keys;
  auto copy32 = [&material](std::size_t offset, std::uint8_t* dst) {
    std::memcpy(dst, material.data() + offset, 32);
  };
  if (role_ == Role::Initiator) {
    copy32(0, keys.txKey.data());
    copy32(32, keys.rxKey.data());
    copy32(64, keys.txMacKey.data());
    copy32(96, keys.rxMacKey.data());
  } else {
    copy32(32, keys.txKey.data());
    copy32(0, keys.rxKey.data());
    copy32(96, keys.txMacKey.data());
    copy32(64, keys.rxMacKey.data());
  }
  return SecureSession(keys, channelId);
}

}  // namespace privtopk::crypto
