#include "crypto/dh.hpp"

#include "common/error.hpp"

namespace privtopk::crypto {

namespace {

// 512-bit safe prime (p = 2q+1 with q prime), generated offline and verified
// with Miller-Rabin; g = 2 generates the prime-order-q subgroup.  For tests
// and simulations only.
constexpr const char* kP512 =
    "cf1617c4333d783930468cca9389825f23f89a74435e8ae4b746e0365b349070"
    "a622f66dfd609ffeed3291bd6c086b9d650d17cf565f0376584639590873dd27";

// RFC 3526 group 5 (1536-bit MODP).
constexpr const char* kP1536 =
    "ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74"
    "020bbea63b139b22514a08798e3404ddef9519b3cd3a431b302b0a6df25f1437"
    "4fe1356d6d51c245e485b576625e7ec6f44c42e9a637ed6b0bff5cb6f406b7ed"
    "ee386bfb5a899fa5ae9f24117c4b1fe649286651ece45b3dc2007cb8a163bf05"
    "98da48361c55d39a69163fa8fd24cf5f83655d23dca3ad961c62f356208552bb"
    "9ed529077096966d670c354e4abc9804f1746c08ca237327ffffffffffffffff";

// RFC 3526 group 14 (2048-bit MODP).
constexpr const char* kP2048 =
    "ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74"
    "020bbea63b139b22514a08798e3404ddef9519b3cd3a431b302b0a6df25f1437"
    "4fe1356d6d51c245e485b576625e7ec6f44c42e9a637ed6b0bff5cb6f406b7ed"
    "ee386bfb5a899fa5ae9f24117c4b1fe649286651ece45b3dc2007cb8a163bf05"
    "98da48361c55d39a69163fa8fd24cf5f83655d23dca3ad961c62f356208552bb"
    "9ed529077096966d670c354e4abc9804f1746c08ca18217c32905e462e36ce3b"
    "e39e772c180e86039b2783a2ec07a28fb5c55df06f4c52c9de2bcbf695581718"
    "3995497cea956ae515d2261898fa051015728e5a8aacaa68ffffffffffffffff";

DhGroup makeGroup(const char* hex, const char* name) {
  DhGroup g;
  g.p = BigUInt::fromHex(hex);
  g.g = BigUInt(2);
  g.name = name;
  return g;
}

}  // namespace

const DhGroup& DhGroup::test512() {
  static const DhGroup group = makeGroup(kP512, "test512");
  return group;
}

const DhGroup& DhGroup::modp1536() {
  static const DhGroup group = makeGroup(kP1536, "modp1536");
  return group;
}

const DhGroup& DhGroup::modp2048() {
  static const DhGroup group = makeGroup(kP2048, "modp2048");
  return group;
}

DhKeyPair dhGenerate(const DhGroup& group, Rng& rng) {
  const std::size_t bits = group.p.bitLength() - 1;
  const std::size_t bytes = (bits + 7) / 8;

  std::vector<std::uint8_t> raw(bytes);
  for (auto& b : raw) b = static_cast<std::uint8_t>(rng.next());
  // Clear excess high bits, then force the top kept bit so the exponent is
  // large, and avoid 0/1 exponents.
  raw[0] &= static_cast<std::uint8_t>(0xff >> (8 * bytes - bits));
  raw[0] |= static_cast<std::uint8_t>(1u << ((bits - 1) % 8));

  DhKeyPair kp;
  kp.privateKey = BigUInt::fromBytes(raw);
  kp.publicKey = modexp(group.g, kp.privateKey, group.p);
  return kp;
}

std::vector<std::uint8_t> dhSharedSecret(const DhGroup& group,
                                         const BigUInt& privateKey,
                                         const BigUInt& peerPublic) {
  const BigUInt pMinus1 = group.p.sub(BigUInt(1));
  if (peerPublic.isZero() || peerPublic == BigUInt(1) ||
      peerPublic >= pMinus1) {
    throw CryptoError("dhSharedSecret: degenerate peer public key");
  }
  const BigUInt secret = modexp(peerPublic, privateKey, group.p);
  return secret.toBytes(group.p.bitLength() / 8);
}

}  // namespace privtopk::crypto
