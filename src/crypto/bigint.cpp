#include "crypto/bigint.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace privtopk::crypto {

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
using u128 = unsigned __int128;
#pragma GCC diagnostic pop

void BigUInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUInt BigUInt::fromHex(std::string_view hex) {
  BigUInt out;
  std::string clean;
  clean.reserve(hex.size());
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (!std::isxdigit(static_cast<unsigned char>(c))) {
      throw CryptoError("BigUInt::fromHex: invalid character");
    }
    clean.push_back(c);
  }
  // Consume from the least-significant end in 16-digit chunks.
  std::size_t end = clean.size();
  while (end > 0) {
    const std::size_t begin = end >= 16 ? end - 16 : 0;
    const std::string chunk = clean.substr(begin, end - begin);
    out.limbs_.push_back(std::stoull(chunk, nullptr, 16));
    end = begin;
  }
  out.trim();
  return out;
}

BigUInt BigUInt::fromBytes(std::span<const std::uint8_t> bytes) {
  BigUInt out;
  const std::size_t n = bytes.size();
  out.limbs_.resize((n + 7) / 8, 0);
  for (std::size_t i = 0; i < n; ++i) {
    // bytes[0] is most significant.
    const std::size_t byteIndexFromLsb = n - 1 - i;
    out.limbs_[byteIndexFromLsb / 8] |=
        static_cast<std::uint64_t>(bytes[i]) << (8 * (byteIndexFromLsb % 8));
  }
  out.trim();
  return out;
}

std::string BigUInt::toHex() const {
  if (limbs_.empty()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xf]);
    }
  }
  const std::size_t firstNonZero = out.find_first_not_of('0');
  return out.substr(firstNonZero);
}

std::vector<std::uint8_t> BigUInt::toBytes(std::size_t width) const {
  const std::size_t minBytes = (bitLength() + 7) / 8;
  const std::size_t outLen = std::max(width, std::max<std::size_t>(minBytes, 1));
  std::vector<std::uint8_t> out(outLen, 0);
  for (std::size_t i = 0; i < minBytes; ++i) {
    out[outLen - 1 - i] =
        static_cast<std::uint8_t>(limb(i / 8) >> (8 * (i % 8)));
  }
  return out;
}

std::size_t BigUInt::bitLength() const {
  if (limbs_.empty()) return 0;
  const std::uint64_t top = limbs_.back();
  const int lead = __builtin_clzll(top);
  return limbs_.size() * 64 - static_cast<std::size_t>(lead);
}

bool BigUInt::bit(std::size_t i) const {
  const std::size_t limbIdx = i / 64;
  if (limbIdx >= limbs_.size()) return false;
  return ((limbs_[limbIdx] >> (i % 64)) & 1) != 0;
}

int BigUInt::compare(const BigUInt& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) {
      return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
  }
  return 0;
}

BigUInt BigUInt::add(const BigUInt& other) const {
  BigUInt out;
  const std::size_t n = std::max(limbs_.size(), other.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 sum = static_cast<u128>(limb(i)) + other.limb(i) + carry;
    out.limbs_[i] = static_cast<std::uint64_t>(sum);
    carry = static_cast<std::uint64_t>(sum >> 64);
  }
  out.limbs_[n] = carry;
  out.trim();
  return out;
}

BigUInt BigUInt::sub(const BigUInt& other) const {
  if (compare(other) < 0) throw CryptoError("BigUInt::sub: negative result");
  BigUInt out;
  out.limbs_.resize(limbs_.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    // 128-bit arithmetic keeps the borrow logic obvious.
    const u128 wide =
        (static_cast<u128>(1) << 64) + limbs_[i] - other.limb(i) - borrow;
    out.limbs_[i] = static_cast<std::uint64_t>(wide);
    borrow = (wide >> 64) == 0 ? 1 : 0;
  }
  out.trim();
  return out;
}

BigUInt BigUInt::mul(const BigUInt& other) const {
  if (isZero() || other.isZero()) return BigUInt();
  BigUInt out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < other.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(limbs_[i]) * other.limbs_[j] +
                       out.limbs_[i + j] + carry;
      out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    out.limbs_[i + other.limbs_.size()] += carry;
  }
  out.trim();
  return out;
}

BigUInt BigUInt::shiftLeft(std::size_t bits) const {
  if (isZero() || bits == 0) return *this;
  const std::size_t limbShift = bits / 64;
  const std::size_t bitShift = bits % 64;
  BigUInt out;
  out.limbs_.assign(limbs_.size() + limbShift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out.limbs_[i + limbShift] |= limbs_[i] << bitShift;
    if (bitShift != 0) {
      out.limbs_[i + limbShift + 1] |= limbs_[i] >> (64 - bitShift);
    }
  }
  out.trim();
  return out;
}

BigUInt BigUInt::shiftRight(std::size_t bits) const {
  const std::size_t limbShift = bits / 64;
  if (limbShift >= limbs_.size()) return BigUInt();
  const std::size_t bitShift = bits % 64;
  BigUInt out;
  out.limbs_.assign(limbs_.size() - limbShift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = limbs_[i + limbShift] >> bitShift;
    if (bitShift != 0 && i + limbShift + 1 < limbs_.size()) {
      out.limbs_[i] |= limbs_[i + limbShift + 1] << (64 - bitShift);
    }
  }
  out.trim();
  return out;
}

std::pair<BigUInt, BigUInt> BigUInt::divmod(const BigUInt& divisor) const {
  if (divisor.isZero()) throw CryptoError("BigUInt::divmod: divide by zero");
  if (compare(divisor) < 0) return {BigUInt(), *this};

  const std::size_t shift = bitLength() - divisor.bitLength();
  BigUInt remainder = *this;
  BigUInt quotient;
  quotient.limbs_.assign(shift / 64 + 1, 0);
  BigUInt shifted = divisor.shiftLeft(shift);
  for (std::size_t i = shift + 1; i-- > 0;) {
    if (remainder.compare(shifted) >= 0) {
      remainder = remainder.sub(shifted);
      quotient.limbs_[i / 64] |= std::uint64_t{1} << (i % 64);
    }
    shifted = shifted.shiftRight(1);
  }
  quotient.trim();
  return {quotient, remainder};
}

// ---------------------------------------------------------------------------
// Montgomery arithmetic
// ---------------------------------------------------------------------------

namespace {

/// Computes -m^{-1} mod 2^64 for odd m via Newton iteration.
std::uint64_t negInverse64(std::uint64_t m) {
  std::uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) {  // doubles correct bits each step: 1->64
    inv *= 2 - m * inv;
  }
  return ~inv + 1;  // -inv mod 2^64
}

}  // namespace

Montgomery::Montgomery(const BigUInt& modulus) : modulus_(modulus) {
  if (!modulus.isOdd() || modulus.bitLength() < 2) {
    throw CryptoError("Montgomery: modulus must be odd and > 1");
  }
  n_ = modulus.limbCount();
  nPrime_ = negInverse64(modulus.limb(0));
  // R^2 mod m with R = 2^(64 n).
  const BigUInt r2 = BigUInt(1).shiftLeft(2 * 64 * n_).mod(modulus_);
  rSquared_.assign(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) rSquared_[i] = r2.limb(i);
}

Montgomery::Limbs Montgomery::montMul(const Limbs& a, const Limbs& b) const {
  // CIOS (Coarsely Integrated Operand Scanning).
  Limbs t(n_ + 2, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    // t += a[i] * b
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      const u128 cur = static_cast<u128>(a[i]) * b[j] + t[j] + carry;
      t[j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    {
      const u128 cur = static_cast<u128>(t[n_]) + carry;
      t[n_] = static_cast<std::uint64_t>(cur);
      t[n_ + 1] = static_cast<std::uint64_t>(cur >> 64);
    }
    // m = t[0] * nPrime mod 2^64;  t += m * modulus;  t >>= 64
    const std::uint64_t m = t[0] * nPrime_;
    carry = 0;
    {
      const u128 cur = static_cast<u128>(m) * modulus_.limb(0) + t[0];
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    for (std::size_t j = 1; j < n_; ++j) {
      const u128 cur = static_cast<u128>(m) * modulus_.limb(j) + t[j] + carry;
      t[j - 1] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    {
      const u128 cur = static_cast<u128>(t[n_]) + carry;
      t[n_ - 1] = static_cast<std::uint64_t>(cur);
      t[n_] = t[n_ + 1] + static_cast<std::uint64_t>(cur >> 64);
      t[n_ + 1] = 0;
    }
  }

  // Conditional final subtraction so the result is < modulus.
  Limbs result(t.begin(), t.begin() + static_cast<long>(n_));
  bool geq = t[n_] != 0;
  if (!geq) {
    geq = true;
    for (std::size_t i = n_; i-- > 0;) {
      if (result[i] != modulus_.limb(i)) {
        geq = result[i] > modulus_.limb(i);
        break;
      }
    }
  }
  if (geq) {
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      const u128 wide = (static_cast<u128>(1) << 64) + result[i] -
                        modulus_.limb(i) - borrow;
      result[i] = static_cast<std::uint64_t>(wide);
      borrow = (wide >> 64) == 0 ? 1 : 0;
    }
  }
  return result;
}

Montgomery::Limbs Montgomery::toMont(const BigUInt& x) const {
  const BigUInt reduced = x.mod(modulus_);
  Limbs xs(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) xs[i] = reduced.limb(i);
  return montMul(xs, rSquared_);
}

BigUInt Montgomery::fromMont(const Limbs& x) const {
  Limbs one(n_, 0);
  one[0] = 1;
  const Limbs raw = montMul(x, one);
  BigUInt out;
  out.limbs_ = raw;
  out.trim();
  return out;
}

BigUInt Montgomery::modmul(const BigUInt& a, const BigUInt& b) const {
  return fromMont(montMul(toMont(a), toMont(b)));
}

BigUInt Montgomery::modexp(const BigUInt& base, const BigUInt& exponent) const {
  Limbs result = toMont(BigUInt(1));
  const Limbs b = toMont(base);
  if (exponent.isZero()) return fromMont(result);
  // Left-to-right square and multiply.
  for (std::size_t i = exponent.bitLength(); i-- > 0;) {
    result = montMul(result, result);
    if (exponent.bit(i)) result = montMul(result, b);
  }
  return fromMont(result);
}

BigUInt modexp(const BigUInt& base, const BigUInt& exponent,
               const BigUInt& modulus) {
  return Montgomery(modulus).modexp(base, exponent);
}

}  // namespace privtopk::crypto
