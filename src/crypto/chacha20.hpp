// ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//
// The secure channel encrypts ring messages with ChaCha20 and authenticates
// them with HMAC-SHA-256 (encrypt-then-MAC).  ChaCha20 is symmetric:
// encrypt == decrypt.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace privtopk::crypto {

using ChaChaKey = std::array<std::uint8_t, 32>;
using ChaChaNonce = std::array<std::uint8_t, 12>;

/// Computes one 64-byte ChaCha20 keystream block for the given counter.
/// Exposed for test vectors.
[[nodiscard]] std::array<std::uint8_t, 64> chacha20Block(
    const ChaChaKey& key, const ChaChaNonce& nonce, std::uint32_t counter);

/// XORs `data` with the ChaCha20 keystream starting at block `counter`
/// (RFC 8439 uses counter=1 for AEAD payloads; we default to 0 for the raw
/// stream).  In-place transformation.
void chacha20XorInPlace(const ChaChaKey& key, const ChaChaNonce& nonce,
                        std::uint32_t counter, std::span<std::uint8_t> data);

/// Convenience copy-transform.
[[nodiscard]] std::vector<std::uint8_t> chacha20Xor(
    const ChaChaKey& key, const ChaChaNonce& nonce, std::uint32_t counter,
    std::span<const std::uint8_t> data);

/// Builds a 12-byte nonce from a 4-byte channel id and 8-byte sequence
/// number; the (key, nonce) pair is never reused because the sequence
/// number increments per message.
[[nodiscard]] ChaChaNonce makeNonce(std::uint32_t channelId,
                                    std::uint64_t sequence);

}  // namespace privtopk::crypto
