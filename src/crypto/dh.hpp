// Finite-field Diffie-Hellman key agreement.
//
// Ring neighbours agree on pairwise channel keys with classic DH over a
// multiplicative prime group, then derive directional ChaCha20/HMAC keys
// with HKDF.  Named groups: a small 512-bit group for fast tests and the
// RFC 3526 1536/2048-bit MODP groups for realistic deployments.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "crypto/bigint.hpp"

namespace privtopk::crypto {

/// A Diffie-Hellman group: safe prime p and generator g.
struct DhGroup {
  BigUInt p;
  BigUInt g;
  std::string name;

  /// 512-bit safe prime; only for tests and simulations.
  static const DhGroup& test512();
  /// RFC 3526 group 5 (1536-bit MODP).
  static const DhGroup& modp1536();
  /// RFC 3526 group 14 (2048-bit MODP).
  static const DhGroup& modp2048();
};

/// One party's DH key pair.
struct DhKeyPair {
  BigUInt privateKey;  // x
  BigUInt publicKey;   // g^x mod p
};

/// Samples a key pair; the private exponent is a uniform value with
/// bitLength(p) - 1 bits drawn from `rng` (deterministic tests pass a seeded
/// Rng; production callers should seed from an entropy source).
[[nodiscard]] DhKeyPair dhGenerate(const DhGroup& group, Rng& rng);

/// Computes the shared secret (peerPublic^privateKey mod p) as fixed-width
/// big-endian bytes.  Throws CryptoError on a degenerate peer key
/// (0, 1, or p-1), which would void the secrecy of the exchange.
[[nodiscard]] std::vector<std::uint8_t> dhSharedSecret(
    const DhGroup& group, const BigUInt& privateKey, const BigUInt& peerPublic);

}  // namespace privtopk::crypto
