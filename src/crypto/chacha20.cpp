#include "crypto/chacha20.hpp"

namespace privtopk::crypto {

namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

void quarterRound(std::array<std::uint32_t, 16>& s, int a, int b, int c,
                  int d) {
  s[a] += s[b];
  s[d] = rotl(s[d] ^ s[a], 16);
  s[c] += s[d];
  s[b] = rotl(s[b] ^ s[c], 12);
  s[a] += s[b];
  s[d] = rotl(s[d] ^ s[a], 8);
  s[c] += s[d];
  s[b] = rotl(s[b] ^ s[c], 7);
}

std::uint32_t readLE32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::array<std::uint8_t, 64> chacha20Block(const ChaChaKey& key,
                                           const ChaChaNonce& nonce,
                                           std::uint32_t counter) {
  std::array<std::uint32_t, 16> state = {
      0x61707865, 0x3320646e, 0x79622d32, 0x6b206574,  // "expand 32-byte k"
      readLE32(key.data() + 0),  readLE32(key.data() + 4),
      readLE32(key.data() + 8),  readLE32(key.data() + 12),
      readLE32(key.data() + 16), readLE32(key.data() + 20),
      readLE32(key.data() + 24), readLE32(key.data() + 28),
      counter,
      readLE32(nonce.data() + 0), readLE32(nonce.data() + 4),
      readLE32(nonce.data() + 8)};

  std::array<std::uint32_t, 16> working = state;
  for (int i = 0; i < 10; ++i) {
    quarterRound(working, 0, 4, 8, 12);
    quarterRound(working, 1, 5, 9, 13);
    quarterRound(working, 2, 6, 10, 14);
    quarterRound(working, 3, 7, 11, 15);
    quarterRound(working, 0, 5, 10, 15);
    quarterRound(working, 1, 6, 11, 12);
    quarterRound(working, 2, 7, 8, 13);
    quarterRound(working, 3, 4, 9, 14);
  }

  std::array<std::uint8_t, 64> out;
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t word = working[i] + state[i];
    out[4 * i] = static_cast<std::uint8_t>(word);
    out[4 * i + 1] = static_cast<std::uint8_t>(word >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(word >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(word >> 24);
  }
  return out;
}

void chacha20XorInPlace(const ChaChaKey& key, const ChaChaNonce& nonce,
                        std::uint32_t counter, std::span<std::uint8_t> data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::array<std::uint8_t, 64> ks = chacha20Block(key, nonce, counter);
    ++counter;
    const std::size_t take = std::min<std::size_t>(64, data.size() - offset);
    for (std::size_t i = 0; i < take; ++i) {
      data[offset + i] ^= ks[i];
    }
    offset += take;
  }
}

std::vector<std::uint8_t> chacha20Xor(const ChaChaKey& key,
                                      const ChaChaNonce& nonce,
                                      std::uint32_t counter,
                                      std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> out(data.begin(), data.end());
  chacha20XorInPlace(key, nonce, counter, out);
  return out;
}

ChaChaNonce makeNonce(std::uint32_t channelId, std::uint64_t sequence) {
  ChaChaNonce nonce;
  for (int i = 0; i < 4; ++i) {
    nonce[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(channelId >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    nonce[static_cast<std::size_t>(4 + i)] =
        static_cast<std::uint8_t>(sequence >> (8 * i));
  }
  return nonce;
}

}  // namespace privtopk::crypto
