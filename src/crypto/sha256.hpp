// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used by the secure-channel substrate for key derivation and message
// authentication (via HMAC).  Streaming interface plus a one-shot helper.

#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace privtopk::crypto {

/// A 32-byte SHA-256 digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() { reset(); }

  /// Resets to the initial state.
  void reset();

  /// Absorbs `data`.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s) {
    update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  /// Finalizes and returns the digest.  The hasher must be reset() before
  /// reuse.
  [[nodiscard]] Sha256Digest finish();

 private:
  void processBlock(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t bufferLen_ = 0;
  std::uint64_t totalLen_ = 0;
};

/// One-shot digest.
[[nodiscard]] Sha256Digest sha256(std::span<const std::uint8_t> data);
[[nodiscard]] Sha256Digest sha256(std::string_view s);

/// Hex rendering for tests and logs.
[[nodiscard]] std::string toHex(std::span<const std::uint8_t> bytes);

}  // namespace privtopk::crypto
