// Arbitrary-precision unsigned integers and Montgomery modular
// exponentiation, sized for Diffie-Hellman group arithmetic.
//
// The representation is a little-endian vector of 64-bit limbs with no
// leading zero limbs (zero is the empty vector).  Multiplication is
// schoolbook (fine for <= 4096-bit operands); modular exponentiation uses
// Montgomery CIOS multiplication so 2048-bit DH completes in milliseconds.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace privtopk::crypto {

class BigUInt {
 public:
  BigUInt() = default;
  explicit BigUInt(std::uint64_t v) {
    if (v != 0) limbs_.push_back(v);
  }

  /// Parses a hexadecimal string (no 0x prefix; whitespace ignored).
  static BigUInt fromHex(std::string_view hex);

  /// Parses big-endian bytes.
  static BigUInt fromBytes(std::span<const std::uint8_t> bytes);

  /// Renders lowercase hex without leading zeros ("0" for zero).
  [[nodiscard]] std::string toHex() const;

  /// Big-endian byte rendering, zero-padded on the left to `width` bytes
  /// (width 0 = minimal).
  [[nodiscard]] std::vector<std::uint8_t> toBytes(std::size_t width = 0) const;

  [[nodiscard]] bool isZero() const { return limbs_.empty(); }
  [[nodiscard]] bool isOdd() const {
    return !limbs_.empty() && (limbs_[0] & 1) != 0;
  }

  /// Number of significant bits (0 for zero).
  [[nodiscard]] std::size_t bitLength() const;

  /// Value of bit i (0-based from LSB).
  [[nodiscard]] bool bit(std::size_t i) const;

  [[nodiscard]] std::size_t limbCount() const { return limbs_.size(); }
  [[nodiscard]] std::uint64_t limb(std::size_t i) const {
    return i < limbs_.size() ? limbs_[i] : 0;
  }

  // Comparison: total order on the integer values.
  [[nodiscard]] int compare(const BigUInt& other) const;
  friend bool operator==(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) == 0;
  }
  friend bool operator<(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) < 0;
  }
  friend bool operator<=(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) <= 0;
  }
  friend bool operator>(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) > 0;
  }
  friend bool operator>=(const BigUInt& a, const BigUInt& b) {
    return a.compare(b) >= 0;
  }

  [[nodiscard]] BigUInt add(const BigUInt& other) const;
  /// Requires *this >= other.
  [[nodiscard]] BigUInt sub(const BigUInt& other) const;
  [[nodiscard]] BigUInt mul(const BigUInt& other) const;
  [[nodiscard]] BigUInt shiftLeft(std::size_t bits) const;
  [[nodiscard]] BigUInt shiftRight(std::size_t bits) const;

  /// Euclidean division; returns {quotient, remainder}.  Requires a nonzero
  /// divisor.  Binary long division: O(bits) iterations, used only outside
  /// hot loops (Montgomery conversion, tests).
  [[nodiscard]] std::pair<BigUInt, BigUInt> divmod(const BigUInt& divisor) const;

  [[nodiscard]] BigUInt mod(const BigUInt& m) const { return divmod(m).second; }

 private:
  friend class Montgomery;
  void trim();

  std::vector<std::uint64_t> limbs_;  // little-endian, trimmed
};

/// Montgomery context for a fixed odd modulus; provides fast modular
/// multiplication and exponentiation.
class Montgomery {
 public:
  /// Requires an odd modulus > 1.
  explicit Montgomery(const BigUInt& modulus);

  /// Computes base^exponent mod modulus (square-and-multiply over the
  /// Montgomery domain).
  [[nodiscard]] BigUInt modexp(const BigUInt& base,
                               const BigUInt& exponent) const;

  /// Modular multiplication a*b mod modulus (converts through the
  /// Montgomery domain).
  [[nodiscard]] BigUInt modmul(const BigUInt& a, const BigUInt& b) const;

  [[nodiscard]] const BigUInt& modulus() const { return modulus_; }

 private:
  using Limbs = std::vector<std::uint64_t>;

  /// CIOS Montgomery multiplication on fixed-width limb vectors.
  [[nodiscard]] Limbs montMul(const Limbs& a, const Limbs& b) const;

  [[nodiscard]] Limbs toMont(const BigUInt& x) const;
  [[nodiscard]] BigUInt fromMont(const Limbs& x) const;

  BigUInt modulus_;
  std::size_t n_;            // limb count of the modulus
  std::uint64_t nPrime_;     // -modulus^{-1} mod 2^64
  Limbs rSquared_;           // R^2 mod modulus, R = 2^(64 n)
};

/// Convenience one-shot modular exponentiation (odd modulus).
[[nodiscard]] BigUInt modexp(const BigUInt& base, const BigUInt& exponent,
                             const BigUInt& modulus);

}  // namespace privtopk::crypto
