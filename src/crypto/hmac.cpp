#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

#include "common/error.hpp"

namespace privtopk::crypto {

Sha256Digest hmacSha256(std::span<const std::uint8_t> key,
                        std::span<const std::uint8_t> data) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > 64) {
    const Sha256Digest kd = sha256(key);
    std::memcpy(block.data(), kd.data(), kd.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad.data(), ipad.size()));
  inner.update(data);
  const Sha256Digest innerDigest = inner.finish();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad.data(), opad.size()));
  outer.update(
      std::span<const std::uint8_t>(innerDigest.data(), innerDigest.size()));
  return outer.finish();
}

bool constantTimeEqual(std::span<const std::uint8_t> a,
                       std::span<const std::uint8_t> b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

std::vector<std::uint8_t> hkdfSha256(
    std::span<const std::uint8_t> inputKeyMaterial,
    std::span<const std::uint8_t> salt, std::string_view info,
    std::size_t length) {
  if (length > 255 * 32) throw CryptoError("hkdf: requested output too long");

  // Extract.
  std::array<std::uint8_t, 32> zeroSalt{};
  const Sha256Digest prk = hmacSha256(
      salt.empty() ? std::span<const std::uint8_t>(zeroSalt.data(), 32) : salt,
      inputKeyMaterial);

  // Expand.
  std::vector<std::uint8_t> out;
  out.reserve(length);
  std::vector<std::uint8_t> previous;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    std::vector<std::uint8_t> block = previous;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    const Sha256Digest t = hmacSha256(
        std::span<const std::uint8_t>(prk.data(), prk.size()), block);
    previous.assign(t.begin(), t.end());
    const std::size_t take = std::min<std::size_t>(32, length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<long>(take));
  }
  return out;
}

}  // namespace privtopk::crypto
