#include "protocol/trace_io.hpp"

#include <cstring>
#include <fstream>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace privtopk::protocol {

namespace {

constexpr std::uint8_t kFormatVersion = 1;
constexpr char kMagic[4] = {'P', 'T', 'R', 'C'};

void writeVector(ByteWriter& w, const TopKVector& v) {
  w.writeValueVector(v);
}

TopKVector readVector(ByteReader& r) { return r.readValueVector(); }

}  // namespace

void encodeTrace(const ExecutionTrace& trace, ByteWriter& w) {
  w.writeVarint(trace.nodeCount);
  w.writeVarint(trace.k);
  w.writeU32(trace.rounds);
  writeVector(w, trace.result);

  w.writeVarint(trace.initialOrder.size());
  for (NodeId id : trace.initialOrder) w.writeU32(id);

  w.writeVarint(trace.localVectors.size());
  for (const auto& local : trace.localVectors) writeVector(w, local);

  w.writeVarint(trace.steps.size());
  for (const auto& step : trace.steps) {
    w.writeU32(step.round);
    w.writeVarint(step.position);
    w.writeU32(step.node);
    writeVector(w, step.input);
    writeVector(w, step.output);
  }
}

ExecutionTrace decodeTrace(ByteReader& r) {
  ExecutionTrace trace;
  trace.nodeCount = r.readVarint();
  trace.k = r.readVarint();
  trace.rounds = r.readU32();
  trace.result = readVector(r);

  const std::uint64_t orderLen = r.readVarint();
  if (orderLen > r.remaining() / 4) {
    throw ProtocolError("trace: ring order too long");
  }
  trace.initialOrder.reserve(orderLen);
  for (std::uint64_t i = 0; i < orderLen; ++i) {
    trace.initialOrder.push_back(r.readU32());
  }

  const std::uint64_t localCount = r.readVarint();
  if (localCount > r.remaining()) {
    throw ProtocolError("trace: local vector count too large");
  }
  trace.localVectors.reserve(localCount);
  for (std::uint64_t i = 0; i < localCount; ++i) {
    trace.localVectors.push_back(readVector(r));
  }

  const std::uint64_t stepCount = r.readVarint();
  if (stepCount > r.remaining()) {
    throw ProtocolError("trace: step count too large");
  }
  trace.steps.reserve(stepCount);
  for (std::uint64_t i = 0; i < stepCount; ++i) {
    TraceStep step;
    step.round = r.readU32();
    step.position = r.readVarint();
    step.node = r.readU32();
    step.input = readVector(r);
    step.output = readVector(r);
    trace.steps.push_back(std::move(step));
  }

  // Internal consistency: every step must reference a known node.
  for (const auto& step : trace.steps) {
    if (step.node >= trace.nodeCount) {
      throw ProtocolError("trace: step references unknown node");
    }
  }
  if (trace.localVectors.size() != trace.nodeCount) {
    throw ProtocolError("trace: local vector count mismatch");
  }
  return trace;
}

Bytes encodeTraceArchive(const std::vector<ExecutionTrace>& traces) {
  ByteWriter w;
  w.writeBytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), 4));
  w.writeU8(kFormatVersion);
  w.writeVarint(traces.size());
  for (const auto& trace : traces) encodeTrace(trace, w);
  return w.take();
}

std::vector<ExecutionTrace> decodeTraceArchive(
    std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  char magic[4];
  for (char& c : magic) c = static_cast<char>(r.readU8());
  if (std::memcmp(magic, kMagic, 4) != 0) {
    throw ProtocolError("trace archive: bad magic");
  }
  const std::uint8_t version = r.readU8();
  if (version != kFormatVersion) {
    throw ProtocolError("trace archive: unsupported version " +
                        std::to_string(version));
  }
  const std::uint64_t count = r.readVarint();
  if (count > bytes.size()) {
    throw ProtocolError("trace archive: count exceeds payload");
  }
  std::vector<ExecutionTrace> traces;
  traces.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    traces.push_back(decodeTrace(r));
  }
  if (!r.atEnd()) throw ProtocolError("trace archive: trailing bytes");
  return traces;
}

void saveTraceArchive(const std::string& path,
                      const std::vector<ExecutionTrace>& traces) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("saveTraceArchive: cannot open '" + path + "'");
  const Bytes bytes = encodeTraceArchive(traces);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw Error("saveTraceArchive: write failed for '" + path + "'");
}

std::vector<ExecutionTrace> loadTraceArchive(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("loadTraceArchive: cannot open '" + path + "'");
  Bytes bytes((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  return decodeTraceArchive(bytes);
}

void emitTraceEvents(const ExecutionTrace& trace, std::uint64_t queryId) {
  obs::EventTracer& tracer = obs::EventTracer::global();
  if (!tracer.enabled()) return;
  const auto qid = static_cast<std::int64_t>(queryId);
  const obs::Span span("query_replay",
                       {{"query_id", qid},
                        {"n", static_cast<std::int64_t>(trace.nodeCount)},
                        {"k", static_cast<std::int64_t>(trace.k)},
                        {"rounds", trace.rounds}});
  for (const TraceStep& step : trace.steps) {
    tracer.event("event", "ring_step",
                 {{"query_id", qid},
                  {"round", step.round},
                  {"position", static_cast<std::int64_t>(step.position)},
                  {"node", step.node}});
  }
}

}  // namespace privtopk::protocol
