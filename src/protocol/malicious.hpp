// Malicious-model experiments (paper §2.1 / §7: "we plan to relax the
// semi-honest model assumption and address the situations where
// adversaries may not follow the protocol correctly").
//
// The paper names two concrete attacks under the malicious model:
//   * spoofing - "an adversary sends a spoofed dataset", modeled here as
//     input inflation (claiming values it does not hold) which pollutes
//     the published result;
//   * hiding  - "deliberately hides all or part of its dataset", which
//     silently removes true values from the result.
// We add two protocol-level deviations a broken/hostile node could make:
//   * suppression - always forward the incoming vector unchanged (never
//     contribute), equivalent to hiding everything;
//   * deflation   - replace the outgoing vector with the domain minimum,
//     a vandalism attack on liveness of the value (bounded by
//     monotonicity at honest nodes, so it only delays convergence).
//
// The harness runs a mixed fleet (honest + misbehaving nodes) and scores
// the damage: result precision vs ground truth over honest data and the
// fraction of fabricated values in the published answer.

#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "protocol/params.hpp"

namespace privtopk::protocol {

enum class MaliciousBehavior {
  Honest,
  /// Participates with fabricated values drawn near the domain maximum.
  SpoofInflate,
  /// Enters the protocol with an empty dataset (hides everything).
  HideValues,
  /// Follows initialization but always forwards the vector unchanged.
  Suppress,
  /// Emits k copies of the domain minimum every step (vandalism).
  Deflate,
};

[[nodiscard]] const char* toString(MaliciousBehavior behavior);

struct MaliciousRunSpec {
  ProtocolParams params;
  /// behaviors[node] - defaults to Honest for unlisted nodes.
  std::map<NodeId, MaliciousBehavior> behaviors;
  /// How many fabricated values a SpoofInflate node injects (<= k).
  std::size_t spoofCount = 1;
};

struct MaliciousRunResult {
  TopKVector published;
  /// Top-k over honest nodes' real data only (the "clean" ground truth).
  TopKVector honestTruth;
  /// |published ∩ honestTruth| / k.
  double honestPrecision = 0.0;
  /// Fraction of published values that are fabrications (spoofed values or
  /// surviving randomization noise), i.e. values held by no honest node.
  double fabricatedFraction = 0.0;
};

/// Runs one query over `localValues` with the given behavior assignment.
/// Malicious nodes still cannot break ring delivery (fail-stop transport
/// faults are the sim engine's domain); they only deviate in WHAT they
/// send.
[[nodiscard]] MaliciousRunResult runWithAdversaries(
    const std::vector<std::vector<Value>>& localValues,
    const MaliciousRunSpec& spec, Rng& rng);

}  // namespace privtopk::protocol
