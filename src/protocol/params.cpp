#include "protocol/params.hpp"

#include "analysis/bounds.hpp"
#include "common/error.hpp"

namespace privtopk::protocol {

const char* toString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::Probabilistic: return "probabilistic";
    case ProtocolKind::Naive: return "naive";
    case ProtocolKind::AnonymousNaive: return "anonymous-naive";
  }
  return "?";
}

const char* toString(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::Schedule: return "schedule";
    case MechanismKind::Segmented: return "segmented";
    case MechanismKind::Ldp: return "ldp";
  }
  return "?";
}

void MechanismSpec::validate() const {
  switch (kind) {
    case MechanismKind::Schedule:
      return;  // the schedule knobs live in ProtocolParams itself
    case MechanismKind::Segmented:
      if (segments < kMinSegments || segments > kMaxSegments) {
        throw ConfigError("MechanismSpec: segments must be in [2, 64]");
      }
      return;
    case MechanismKind::Ldp:
      if (!(ldpEpsilon > 0.0) || ldpEpsilon > 64.0) {
        throw ConfigError("MechanismSpec: ldpEpsilon must be in (0, 64]");
      }
      return;
  }
  throw ConfigError("MechanismSpec: unknown mechanism kind");
}

bool operator==(const MechanismSpec& a, const MechanismSpec& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case MechanismKind::Schedule: return true;
    case MechanismKind::Segmented: return a.segments == b.segments;
    case MechanismKind::Ldp: return a.ldpEpsilon == b.ldpEpsilon;
  }
  return false;
}

void ProtocolParams::validate() const {
  if (k == 0) throw ConfigError("ProtocolParams: k must be >= 1");
  if (p0 < 0.0 || p0 > 1.0) {
    throw ConfigError("ProtocolParams: p0 must be in [0, 1]");
  }
  if (d < 0.0 || d > 1.0) {
    throw ConfigError("ProtocolParams: d must be in [0, 1]");
  }
  if (delta < 1) {
    throw ConfigError("ProtocolParams: delta must be >= 1 on integer domains");
  }
  if (domain.min > domain.max) {
    throw ConfigError("ProtocolParams: empty domain");
  }
  if (rounds && *rounds < 1) {
    throw ConfigError("ProtocolParams: rounds must be >= 1");
  }
  if (!rounds && (epsilon <= 0.0 || epsilon >= 1.0)) {
    throw ConfigError("ProtocolParams: epsilon must be in (0, 1)");
  }
  if (!rounds && d >= 1.0 && p0 > epsilon) {
    throw ConfigError(
        "ProtocolParams: rounds bound diverges for d = 1; set rounds "
        "explicitly");
  }
  mechanism.validate();
  if (mechanism.kind != MechanismKind::Schedule && remapEachRound) {
    throw ConfigError(
        "ProtocolParams: remapEachRound only applies to the schedule "
        "mechanism (segmented derives its own per-round orderings)");
  }
}

Round ProtocolParams::effectiveRounds() const {
  validate();
  if (rounds) return *rounds;
  return analysis::minRounds(p0, d, epsilon);
}

}  // namespace privtopk::protocol
