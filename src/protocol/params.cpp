#include "protocol/params.hpp"

#include "analysis/bounds.hpp"
#include "common/error.hpp"

namespace privtopk::protocol {

const char* toString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::Probabilistic: return "probabilistic";
    case ProtocolKind::Naive: return "naive";
    case ProtocolKind::AnonymousNaive: return "anonymous-naive";
  }
  return "?";
}

void ProtocolParams::validate() const {
  if (k == 0) throw ConfigError("ProtocolParams: k must be >= 1");
  if (p0 < 0.0 || p0 > 1.0) {
    throw ConfigError("ProtocolParams: p0 must be in [0, 1]");
  }
  if (d < 0.0 || d > 1.0) {
    throw ConfigError("ProtocolParams: d must be in [0, 1]");
  }
  if (delta < 1) {
    throw ConfigError("ProtocolParams: delta must be >= 1 on integer domains");
  }
  if (domain.min > domain.max) {
    throw ConfigError("ProtocolParams: empty domain");
  }
  if (rounds && *rounds < 1) {
    throw ConfigError("ProtocolParams: rounds must be >= 1");
  }
  if (!rounds && (epsilon <= 0.0 || epsilon >= 1.0)) {
    throw ConfigError("ProtocolParams: epsilon must be in (0, 1)");
  }
  if (!rounds && d >= 1.0 && p0 > epsilon) {
    throw ConfigError(
        "ProtocolParams: rounds bound diverges for d = 1; set rounds "
        "explicitly");
  }
}

Round ProtocolParams::effectiveRounds() const {
  validate();
  if (rounds) return *rounds;
  return analysis::minRounds(p0, d, epsilon);
}

}  // namespace privtopk::protocol
