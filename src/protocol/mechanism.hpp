// The pluggable privacy layer: one PrivacyMechanism decides how a node
// shapes its per-round contribution and which ring ordering each round
// rides on.  protocol::core::Participant owns a mechanism instance and
// consults it for the round budget, the LocalAlgorithm and the per-round
// ring order; the four execution engines stay mechanism-agnostic.
//
// Three implementations ship (docs/PRIVACY.md has the threat models):
//
//   * Schedule  - the paper's Eq.-2 probabilistic randomization
//     (Algorithm 1/2 behind RandomizedMax/TopKAlgorithm).  One fixed ring
//     ordering (or §4.3 per-round remap); privacy decays against
//     colluding ring neighbours.
//   * Segmented - k-secure-sum style (Sheikh et al.): the local top-k is
//     split into S segments, one contributed per round, and every round
//     r >= 2 rides a distinct ring ordering derived deterministically
//     from (queryId, r) - so a coalition must flank a victim in EVERY
//     round to observe its full contribution.  Exact after S rounds.
//   * Ldp       - bounded local-DP perturbation: values are noised once
//     (truncated discrete Laplace, parameterized by epsilon) and merged
//     in a single deterministic round.  Privacy holds even against n-1
//     colluders, at the price of a noisy answer.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "protocol/local_algorithm.hpp"
#include "protocol/params.hpp"

namespace privtopk::protocol {

/// Deterministic seed for the derived ring ordering of round `round`
/// (Segmented mechanism).  Depends only on public inputs so every
/// participant derives the identical ordering without coordination, in
/// the same spirit as the §4.2 group-seed derivations (protocol/group.hpp).
[[nodiscard]] constexpr std::uint64_t segmentRingSeed(std::uint64_t queryId,
                                                      Round round) {
  return splitmix64(splitmix64(queryId ^ 0x5e6d3a91c47b20f5ULL) ^
                    splitmix64(round));
}

/// Noise bound for the Ldp mechanism: the truncated discrete-Laplace draw
/// is clamped to [-B, B] with B ~ ceil(6/epsilon), which keeps more than
/// 1 - e^-6 of the untruncated mass.
[[nodiscard]] Value ldpNoiseBound(double epsilon);

/// One privacy mechanism: round budget + local algorithm + per-round ring
/// ordering.  Stateless (all per-query state lives in the LocalAlgorithm
/// it builds), so instances may be shared or rebuilt freely.
class PrivacyMechanism {
 public:
  virtual ~PrivacyMechanism() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Rounds of token passing this mechanism needs under `params`.
  [[nodiscard]] virtual Round roundBudget(ProtocolKind kind,
                                          const ProtocolParams& params)
      const = 0;

  /// Builds the per-node LocalAlgorithm.  Mechanisms that randomize fork
  /// `rng` with core::kAlgorithmRngTag (exactly one fork, so engines that
  /// pin per-node seeds agree bit for bit); deterministic mechanisms draw
  /// nothing.
  [[nodiscard]] virtual std::unique_ptr<LocalAlgorithm> makeAlgorithm(
      ProtocolKind kind, const ProtocolParams& params, Rng& rng) const = 0;

  /// The ring ordering round `round` travels on, derived from the agreed
  /// `base` order.  The default (identity) keeps one ordering for the
  /// whole query.  Implementations must keep base.front() in front: the
  /// controller's identity is part of the out-of-band agreement.
  [[nodiscard]] virtual std::vector<NodeId> orderForRound(
      const std::vector<NodeId>& base, Round round,
      std::uint64_t queryId) const;

  /// How far above the true top-k an output value may legitimately land
  /// (0 for exact mechanisms; the noise bound for Ldp).  Consumed by the
  /// soundness property checks.
  [[nodiscard]] virtual Value soundnessSlack(const ProtocolParams& params)
      const;
};

/// Builds the mechanism `spec` names; throws ConfigError on an invalid
/// spec.  Cheap enough to call per query.
[[nodiscard]] std::unique_ptr<PrivacyMechanism> makeMechanism(
    const MechanismSpec& spec);

/// Throws ConfigError when `params.mechanism` cannot run on `kind` (the
/// segmented and LDP mechanisms replace the probabilistic randomizer, so
/// they require ProtocolKind::Probabilistic).
void validateMechanismFor(ProtocolKind kind, const ProtocolParams& params);

// ---------------------------------------------------------------------------
// The mechanism-owned local algorithms (exposed for unit tests; engines
// only ever see them through makeAlgorithm).
// ---------------------------------------------------------------------------

/// Segmented circulation: reset() deals the local top-k round-robin into
/// `segments` parts; step(incoming, r) merges part r-1.  Merge-only, so
/// monotone, sound, and exact once every round has run.
class SegmentedMergeAlgorithm final : public LocalAlgorithm {
 public:
  SegmentedMergeAlgorithm(std::size_t k, std::uint32_t segments);

  void reset(TopKVector localTopK) override;
  [[nodiscard]] TopKVector step(const TopKVector& incoming, Round r) override;
  [[nodiscard]] std::string name() const override { return "segmented-merge"; }

  /// The part contributed in round `r` (1-based); exposed for tests.
  [[nodiscard]] const TopKVector& segment(Round r) const;

 private:
  std::size_t k_;
  std::uint32_t segments_;
  std::vector<TopKVector> parts_;
};

/// Local-DP perturbation: reset() noises every local value once with a
/// truncated discrete-Laplace draw (clamped to the domain), then every
/// step merges the perturbed vector like the naive baseline.
class LdpAlgorithm final : public LocalAlgorithm {
 public:
  LdpAlgorithm(std::size_t k, double epsilon, Rng rng, Domain domain);

  void reset(TopKVector localTopK) override;
  [[nodiscard]] TopKVector step(const TopKVector& incoming, Round r) override;
  [[nodiscard]] std::string name() const override { return "ldp"; }

  /// The perturbed vector actually contributed; exposed for tests.
  [[nodiscard]] const TopKVector& perturbed() const { return perturbed_; }

 private:
  std::size_t k_;
  double epsilon_;
  Rng rng_;
  Domain domain_;
  Value bound_;
  TopKVector perturbed_;
};

}  // namespace privtopk::protocol
