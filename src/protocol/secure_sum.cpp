#include "protocol/secure_sum.hpp"

#include "common/error.hpp"

namespace privtopk::protocol {

SecureSumResult secureSum(
    const std::vector<std::vector<std::int64_t>>& perNodeCounters, Rng& rng) {
  const std::size_t n = perNodeCounters.size();
  if (n < 3) throw ConfigError("secureSum: need n >= 3 nodes");
  const std::size_t counters = perNodeCounters.front().size();
  for (const auto& row : perNodeCounters) {
    if (row.size() != counters) {
      throw ConfigError("secureSum: counter count mismatch");
    }
  }

  SecureSumResult out;
  std::vector<std::uint64_t> masks(counters);
  for (auto& m : masks) m = rng.next();

  // Starting node: mask + its own addends.
  std::vector<std::uint64_t> token(counters);
  for (std::size_t c = 0; c < counters; ++c) {
    token[c] = masks[c] + static_cast<std::uint64_t>(perNodeCounters[0][c]);
  }
  out.intermediates.push_back(token);
  ++out.messages;

  // Every other node adds its addends as the token passes.
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t c = 0; c < counters; ++c) {
      token[c] += static_cast<std::uint64_t>(perNodeCounters[i][c]);
    }
    out.intermediates.push_back(token);
    ++out.messages;
  }

  // Back at the starting node: strip the mask.
  out.totals.resize(counters);
  for (std::size_t c = 0; c < counters; ++c) {
    out.totals[c] = static_cast<std::int64_t>(token[c] - masks[c]);
  }
  return out;
}

}  // namespace privtopk::protocol
