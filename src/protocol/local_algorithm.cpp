#include "protocol/local_algorithm.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace privtopk::protocol {

TopKVector mergeTopK(const TopKVector& incoming, const TopKVector& local,
                     std::size_t k) {
  TopKVector merged;
  merged.reserve(k);
  // Both inputs are sorted descending: a k-bounded two-way merge.
  std::size_t i = 0;
  std::size_t j = 0;
  while (merged.size() < k && (i < incoming.size() || j < local.size())) {
    if (j >= local.size() ||
        (i < incoming.size() && incoming[i] >= local[j])) {
      merged.push_back(incoming[i++]);
    } else {
      merged.push_back(local[j++]);
    }
  }
  return merged;
}

TopKVector multisetDifference(const TopKVector& a, const TopKVector& b) {
  TopKVector out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size()) {
    if (j >= b.size() || a[i] > b[j]) {
      out.push_back(a[i++]);
    } else if (a[i] == b[j]) {
      ++i;
      ++j;
    } else {  // a[i] < b[j]: skip the b element with no counterpart
      ++j;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Algorithm 1 - max selection
// ---------------------------------------------------------------------------

RandomizedMaxAlgorithm::RandomizedMaxAlgorithm(
    std::shared_ptr<const RandomizationSchedule> schedule, Rng rng,
    Domain domain)
    : schedule_(std::move(schedule)), rng_(rng), domain_(domain),
      value_(domain.min) {
  if (!schedule_) throw ConfigError("RandomizedMaxAlgorithm: null schedule");
}

void RandomizedMaxAlgorithm::reset(TopKVector localTopK) {
  // A node with no rows participates with the domain minimum, which it can
  // never be forced to expose (the g >= v branch always passes it on).
  value_ = localTopK.empty() ? domain_.min : localTopK.front();
  if (!domain_.contains(value_)) {
    throw ConfigError("RandomizedMaxAlgorithm: local value outside domain");
  }
}

TopKVector RandomizedMaxAlgorithm::step(const TopKVector& incoming, Round r) {
  if (incoming.size() != 1) {
    throw ProtocolError("RandomizedMaxAlgorithm: expected a 1-vector");
  }
  const Value g = incoming.front();

  // Case 1: the global value already dominates; pass it on unchanged - the
  // node exposes nothing.
  if (g >= value_) {
    ++passCounts_.passthrough;
    return {g};
  }

  // Case 2: with probability Pr(r) return a uniform random value from
  // [g, value), otherwise insert the real value.
  const double pr = schedule_->probability(r);
  if (rng_.bernoulli(pr)) {
    ++passCounts_.randomized;
    return {rng_.uniformIntHalfOpen(g, value_)};  // range non-empty: g < value
  }
  ++passCounts_.real;
  return {value_};
}

// ---------------------------------------------------------------------------
// Algorithm 2 - general top-k selection
// ---------------------------------------------------------------------------

RandomizedTopKAlgorithm::RandomizedTopKAlgorithm(
    std::size_t k, std::shared_ptr<const RandomizationSchedule> schedule,
    Rng rng, Domain domain, Value delta)
    : k_(k), schedule_(std::move(schedule)), rng_(rng), domain_(domain),
      delta_(delta) {
  if (k_ == 0) throw ConfigError("RandomizedTopKAlgorithm: k must be >= 1");
  if (!schedule_) throw ConfigError("RandomizedTopKAlgorithm: null schedule");
  if (delta_ < 1) throw ConfigError("RandomizedTopKAlgorithm: delta >= 1");
}

void RandomizedTopKAlgorithm::reset(TopKVector localTopK) {
  if (localTopK.size() > k_) {
    throw ConfigError("RandomizedTopKAlgorithm: local vector larger than k");
  }
  if (!std::is_sorted(localTopK.begin(), localTopK.end(), std::greater<>())) {
    throw ConfigError("RandomizedTopKAlgorithm: local vector not sorted");
  }
  for (Value v : localTopK) {
    if (!domain_.contains(v)) {
      throw ConfigError("RandomizedTopKAlgorithm: local value outside domain");
    }
  }
  local_ = std::move(localTopK);
  inserted_ = false;
}

TopKVector RandomizedTopKAlgorithm::step(const TopKVector& incoming, Round r) {
  if (incoming.size() != k_) {
    throw ProtocolError("RandomizedTopKAlgorithm: expected a k-vector");
  }

  // G'_i(r) = topk(G_{i-1}(r) ∪ V_i) and V'_i = G'_i(r) - G_{i-1}(r).
  //
  // Union semantics: before the node has inserted, none of its physical
  // items are in the global vector, so the union is a plain multiset sum
  // (a local value equal to a value already in G is a distinct physical
  // item and counts twice).  AFTER insertion its items are presumed
  // present, so only copies missing from G may be (re-)contributed -
  // max-multiplicity union - which restores values displaced by a later
  // node's randomized tail without ever double-counting its own data
  // (DESIGN.md interpretation notes).
  const TopKVector candidate =
      inserted_ ? multisetDifference(local_, incoming) : local_;
  const TopKVector real = mergeTopK(incoming, candidate, k_);
  const TopKVector contributed = multisetDifference(real, incoming);
  const std::size_t m = contributed.size();

  // Case 1: nothing of ours in the current top-k; pass the vector on.
  if (m == 0) {
    ++passCounts_.passthrough;
    return incoming;
  }

  // Once the real values have been inserted the node stops randomizing
  // ("a node only does this once") and deterministically re-merges.
  if (inserted_) {
    ++passCounts_.real;
    return real;
  }

  const double pr = schedule_->probability(r);
  if (!rng_.bernoulli(pr)) {
    inserted_ = true;
    ++passCounts_.real;
    return real;
  }
  ++passCounts_.randomized;

  // Randomization branch: keep the first k-m incoming values and fill the
  // tail with m random values from
  //   [ min(G'[k] - delta, G_{i-1}[k-m+1]),  G'[k] )          (1-based)
  // clamped to the domain so integer draws stay legal.
  const Value upper = real[k_ - 1];
  Value lower = std::min(upper - delta_, incoming[k_ - m]);
  lower = std::max(lower, domain_.min);

  TopKVector out(incoming.begin(),
                 incoming.begin() + static_cast<std::ptrdiff_t>(k_ - m));
  if (lower >= upper) {
    // Degenerate range: G'[k] is at the domain floor (possible when the
    // node's contribution still leaves domain-min padding in the vector).
    // Emit domain-min placeholders - trivially replaced later.
    out.insert(out.end(), m, domain_.min);
  } else {
    for (std::size_t idx = 0; idx < m; ++idx) {
      out.push_back(rng_.uniformIntHalfOpen(lower, upper));
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(k_ - m), out.end(),
              std::greater<>());
  }
  return out;
}

}  // namespace privtopk::protocol
