// Randomization-probability schedules.
//
// The paper uses the exponentially dampened schedule Pr(r) = p0 * d^(r-1)
// (Eq. 2) and notes in future work that "it is possible to design other
// forms of randomization probability".  The schedule is therefore a
// pluggable strategy: the protocol only requires that it eventually decay
// to (near) zero so the correct result is produced.

#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"

namespace privtopk::protocol {

class RandomizationSchedule {
 public:
  virtual ~RandomizationSchedule() = default;

  /// Randomization probability for round r (1-based); in [0, 1].
  [[nodiscard]] virtual double probability(Round r) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Eq. 2: p0 * d^(r-1).
class ExponentialSchedule final : public RandomizationSchedule {
 public:
  ExponentialSchedule(double p0, double d) : p0_(p0), d_(d) {
    if (p0 < 0.0 || p0 > 1.0 || d < 0.0 || d > 1.0) {
      throw ConfigError("ExponentialSchedule: p0 and d must be in [0, 1]");
    }
  }
  [[nodiscard]] double probability(Round r) const override {
    if (r < 1) throw ConfigError("ExponentialSchedule: rounds are 1-based");
    return p0_ * std::pow(d_, static_cast<double>(r - 1));
  }
  [[nodiscard]] std::string name() const override { return "exponential"; }
  [[nodiscard]] double p0() const { return p0_; }
  [[nodiscard]] double d() const { return d_; }

 private:
  double p0_;
  double d_;
};

/// Linear decay: max(0, p0 - step*(r-1)).  An alternative schedule for the
/// ablation study; reaches exactly zero after ceil(p0/step) rounds.
class LinearSchedule final : public RandomizationSchedule {
 public:
  LinearSchedule(double p0, double step) : p0_(p0), step_(step) {
    if (p0 < 0.0 || p0 > 1.0 || step <= 0.0) {
      throw ConfigError("LinearSchedule: need p0 in [0,1], step > 0");
    }
  }
  [[nodiscard]] double probability(Round r) const override {
    if (r < 1) throw ConfigError("LinearSchedule: rounds are 1-based");
    return std::max(0.0, p0_ - step_ * static_cast<double>(r - 1));
  }
  [[nodiscard]] std::string name() const override { return "linear"; }

 private:
  double p0_;
  double step_;
};

/// Hard cutoff: probability p0 for the first `window` rounds, then 0.
/// Models "randomize early, be exact late" for the ablation benches.
class StepSchedule final : public RandomizationSchedule {
 public:
  StepSchedule(double p0, Round window) : p0_(p0), window_(window) {
    if (p0 < 0.0 || p0 > 1.0) throw ConfigError("StepSchedule: p0 in [0,1]");
  }
  [[nodiscard]] double probability(Round r) const override {
    if (r < 1) throw ConfigError("StepSchedule: rounds are 1-based");
    return r <= window_ ? p0_ : 0.0;
  }
  [[nodiscard]] std::string name() const override { return "step"; }

 private:
  double p0_;
  Round window_;
};

/// Always zero - reduces the probabilistic protocol to the naive
/// deterministic one (the paper notes this equivalence in §3.3).
class ZeroSchedule final : public RandomizationSchedule {
 public:
  [[nodiscard]] double probability(Round) const override { return 0.0; }
  [[nodiscard]] std::string name() const override { return "zero"; }
};

}  // namespace privtopk::protocol
