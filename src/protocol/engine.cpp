#include "protocol/engine.hpp"

#include <algorithm>
#include <future>
#include <thread>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace privtopk::protocol {

namespace {

/// Global metric cells shared by every participant (registered once).
struct DistributedMetrics {
  obs::Counter& queries =
      obs::counter("privtopk.protocol.queries", {{"engine", "distributed"}});
  obs::Counter& rounds = obs::counter("privtopk.protocol.rounds_executed",
                                      {{"engine", "distributed"}});
  obs::Counter& tokenMessages = obs::counter(
      "privtopk.protocol.token_messages", {{"engine", "distributed"}});
  obs::Counter& randomized = obs::counter(
      "privtopk.protocol.randomized_passes", {{"engine", "distributed"}});
  obs::Counter& real = obs::counter("privtopk.protocol.real_value_passes",
                                    {{"engine", "distributed"}});
  obs::Counter& passthrough = obs::counter(
      "privtopk.protocol.passthrough_passes", {{"engine", "distributed"}});
  obs::Counter& ringRepairs = obs::counter("privtopk.protocol.ring_repairs",
                                           {{"engine", "distributed"}});
  obs::Histogram& tokenBytes = obs::histogram(
      "privtopk.protocol.token_bytes", {{"engine", "distributed"}},
      obs::defaultSizeBuckets());
};

DistributedMetrics& distributedMetrics() {
  static DistributedMetrics metrics;
  return metrics;
}

}  // namespace

DistributedParticipant::DistributedParticipant(ProtocolNode node,
                                               net::Transport& transport,
                                               DistributedConfig config)
    : node_(std::move(node)), transport_(transport), config_(std::move(config)) {
  config_.params.validate();
  if (config_.ringOrder.size() < 3) {
    throw ConfigError("DistributedParticipant: ring needs >= 3 nodes");
  }
  if (std::find(config_.ringOrder.begin(), config_.ringOrder.end(),
                node_.id()) == config_.ringOrder.end()) {
    throw ConfigError("DistributedParticipant: node not on the ring");
  }
}

bool DistributedParticipant::isStart() const {
  return config_.ringOrder.front() == node_.id();
}

void DistributedParticipant::sendOnRing(const Bytes& payload) {
  const auto it = std::find(config_.ringOrder.begin(), config_.ringOrder.end(),
                            node_.id());
  const std::size_t self =
      static_cast<std::size_t>(std::distance(config_.ringOrder.begin(), it));
  const std::size_t n = config_.ringOrder.size();
  for (std::size_t hop = 1; hop < n; ++hop) {
    const NodeId target = config_.ringOrder[(self + hop) % n];
    if (dead_.contains(target)) continue;
    try {
      transport_.send(node_.id(), target, payload);
      distributedMetrics().tokenMessages.inc();
      distributedMetrics().tokenBytes.observe(
          static_cast<double>(payload.size()));
      return;
    } catch (const TransportError& e) {
      PRIVTOPK_LOG_WARN("node ", node_.id(), ": successor ", target,
                        " unreachable (", e.what(), "); repairing ring");
      distributedMetrics().ringRepairs.inc();
      dead_.insert(target);
    }
  }
  throw TransportError("sendOnRing: every other participant is unreachable");
}

net::Message DistributedParticipant::awaitMessage() {
  const auto env = transport_.receive(node_.id(), config_.receiveTimeout);
  if (!env) {
    throw TransportError("DistributedParticipant: receive timed out");
  }
  return net::decodeMessage(env->payload);
}

TopKVector DistributedParticipant::run() {
  const obs::Span span("participant_run",
                       {{"query_id", static_cast<std::int64_t>(config_.queryId)},
                        {"node", node_.id()}});
  TopKVector result = isStart() ? runAsStart() : runAsFollower();
  DistributedMetrics& metrics = distributedMetrics();
  metrics.queries.inc();
  metrics.randomized.inc(node_.passCounts().randomized);
  metrics.real.inc(node_.passCounts().real);
  metrics.passthrough.inc(node_.passCounts().passthrough);
  return result;
}

TopKVector DistributedParticipant::runAsStart() {
  const Round rounds = (config_.kind == ProtocolKind::Probabilistic)
                           ? config_.params.effectiveRounds()
                           : 1;
  TopKVector global(config_.params.k, config_.params.domain.min);

  for (Round r = 1; r <= rounds; ++r) {
    distributedMetrics().rounds.inc();
    global = node_.onToken(r, global);
    sendOnRing(net::encodeMessage(net::RoundToken{config_.queryId, r, global}));
    // Wait for the token to circle back (it becomes next round's input).
    const net::Message msg = awaitMessage();
    const auto* token = std::get_if<net::RoundToken>(&msg);
    if (token == nullptr || token->queryId != config_.queryId ||
        token->round != r) {
      throw ProtocolError("start node: unexpected message mid-round");
    }
    global = token->vector;
  }

  // Termination: announce the final result around the ring (§3.3).
  sendOnRing(net::encodeMessage(net::ResultAnnouncement{config_.queryId, global}));
  const net::Message msg = awaitMessage();
  const auto* announce = std::get_if<net::ResultAnnouncement>(&msg);
  if (announce == nullptr || announce->queryId != config_.queryId) {
    throw ProtocolError("start node: expected the result announcement back");
  }
  return global;
}

TopKVector DistributedParticipant::runAsFollower() {
  while (true) {
    const net::Message msg = awaitMessage();
    if (const auto* token = std::get_if<net::RoundToken>(&msg)) {
      if (token->queryId != config_.queryId) {
        throw ProtocolError("follower: token for an unknown query");
      }
      const TopKVector output = node_.onToken(token->round, token->vector);
      sendOnRing(net::encodeMessage(
          net::RoundToken{config_.queryId, token->round, output}));
    } else if (const auto* announce =
                   std::get_if<net::ResultAnnouncement>(&msg)) {
      if (announce->queryId != config_.queryId) {
        throw ProtocolError("follower: announcement for an unknown query");
      }
      // Forward once; the announcement dies when it reaches the start node.
      sendOnRing(net::encodeMessage(*announce));
      return announce->result;
    } else {
      throw ProtocolError("follower: unexpected message type");
    }
  }
}

TopKVector runDistributedQuery(const std::vector<TopKVector>& localTopK,
                               net::Transport& transport,
                               DistributedConfig config, Rng& rng) {
  const std::size_t n = localTopK.size();
  if (config.ringOrder.size() != n) {
    throw ConfigError("runDistributedQuery: ring order size mismatch");
  }

  std::vector<std::future<TopKVector>> futures;
  futures.reserve(n);
  std::vector<Rng> rngs;
  rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rngs.push_back(rng.fork(i));

  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(std::async(std::launch::async, [&, i] {
      ProtocolNode node(static_cast<NodeId>(i), localTopK[i],
                        makeLocalAlgorithm(config.kind, config.params,
                                           rngs[i]));
      DistributedParticipant participant(std::move(node), transport, config);
      return participant.run();
    }));
  }

  TopKVector result;
  bool first = true;
  for (auto& f : futures) {
    TopKVector r = f.get();
    if (first) {
      result = std::move(r);
      first = false;
    } else if (r != result) {
      throw ProtocolError("runDistributedQuery: nodes disagree on the result");
    }
  }
  return result;
}

}  // namespace privtopk::protocol
