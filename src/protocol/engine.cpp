#include "protocol/engine.hpp"

#include <algorithm>
#include <future>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace privtopk::protocol {

namespace {

/// Global metric cells shared by every participant (registered once).
struct DistributedMetrics {
  obs::Counter& queries =
      obs::counter("privtopk.protocol.queries", {{"engine", "distributed"}});
  obs::Counter& rounds = obs::counter("privtopk.protocol.rounds_executed",
                                      {{"engine", "distributed"}});
  obs::Counter& tokenMessages = obs::counter(
      "privtopk.protocol.token_messages", {{"engine", "distributed"}});
  obs::Counter& randomized = obs::counter(
      "privtopk.protocol.randomized_passes", {{"engine", "distributed"}});
  obs::Counter& real = obs::counter("privtopk.protocol.real_value_passes",
                                    {{"engine", "distributed"}});
  obs::Counter& passthrough = obs::counter(
      "privtopk.protocol.passthrough_passes", {{"engine", "distributed"}});
  obs::Counter& ringRepairs = obs::counter("privtopk.protocol.ring_repairs",
                                           {{"engine", "distributed"}});
  obs::Histogram& tokenBytes = obs::histogram(
      "privtopk.protocol.token_bytes", {{"engine", "distributed"}},
      obs::defaultSizeBuckets());
};

DistributedMetrics& distributedMetrics() {
  static DistributedMetrics metrics;
  return metrics;
}

core::ParticipantConfig coreConfig(NodeId self,
                                   const DistributedConfig& config) {
  core::ParticipantConfig cfg;
  cfg.queryId = config.queryId;
  cfg.self = self;
  cfg.ringOrder = config.ringOrder;
  cfg.kind = config.kind;
  cfg.params = config.params;
  cfg.trace = config.trace;
  cfg.spanSink = config.spanSink;
  return cfg;
}

}  // namespace

DistributedParticipant::DistributedParticipant(NodeId self,
                                               TopKVector localTopK,
                                               net::Transport& transport,
                                               DistributedConfig config,
                                               Rng& rng)
    : transport_(transport),
      config_(std::move(config)),
      core_(coreConfig(self, config_), std::move(localTopK),
            core::makeLocalAlgorithm(config_.kind, config_.params, rng)) {}

void DistributedParticipant::sendOnRing(const Bytes& payload) {
  lastSent_ = payload;
  while (true) {
    const NodeId target = core_.successor();
    try {
      transport_.send(core_.self(), target, payload);
      distributedMetrics().tokenMessages.inc();
      distributedMetrics().tokenBytes.observe(
          static_cast<double>(payload.size()));
      return;
    } catch (const OverloadError&) {
      // Backpressure from the successor's write queue: the peer is alive,
      // just slow.  Brief pause, same target.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    } catch (const TransportError& e) {
      PRIVTOPK_LOG_WARN("node ", core_.self(), ": successor ", target,
                        " unreachable (", e.what(), "); repairing ring");
      distributedMetrics().ringRepairs.inc();
      (void)core_.onPeerDead(target);
      if (core_.aborted()) {
        throw TransportError("sendOnRing: " + core_.abortReason());
      }
    }
  }
}

void DistributedParticipant::perform(const core::Actions& actions) {
  if (actions.sendToken) {
    sendOnRing(net::encodeMessage(*actions.sendToken));
  }
  if (actions.sendResult) {
    sendOnRing(net::encodeMessage(*actions.sendResult));
  }
}

net::Message DistributedParticipant::awaitMessage() {
  const auto deadline =
      std::chrono::steady_clock::now() + config_.receiveTimeout;
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      throw TransportError("DistributedParticipant: receive timed out");
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    const auto env = transport_.receive(
        core_.self(), std::min(config_.retransmitAfter, remaining));
    if (env) return net::decodeMessage(env->payload);
    // Idle slice expired.  Re-send the last message: receivers suppress
    // duplicates, and with an asynchronous transport this retransmission
    // is what surfaces a latched link failure (sendOnRing then repairs
    // the ring and routes around the dead successor).
    if (!lastSent_.empty()) sendOnRing(lastSent_);
  }
}

TopKVector DistributedParticipant::run() {
  const obs::Span span("participant_run",
                       {{"query_id", static_cast<std::int64_t>(config_.queryId)},
                        {"node", core_.self()}});
  if (core_.isStart()) perform(core_.onStart());

  while (!core_.completed()) {
    const net::Message msg = awaitMessage();
    if (const auto* token = std::get_if<net::RoundToken>(&msg)) {
      if (token->queryId != config_.queryId) {
        throw ProtocolError("participant: token for an unknown query");
      }
      const core::Actions actions =
          core_.onToken(token->round, token->vector, token->ctx);
      if (actions.duplicate) {
        // A retransmission (ours or a peer's) that raced the real token;
        // the core's round bookkeeping already absorbed the original.
        continue;
      }
      if (actions.roundClosed) distributedMetrics().rounds.inc();
      perform(actions);
    } else if (const auto* announce =
                   std::get_if<net::ResultAnnouncement>(&msg)) {
      if (announce->queryId != config_.queryId) {
        throw ProtocolError("participant: announcement for an unknown query");
      }
      if (core_.isStart()) {
        throw ProtocolError("start node: unexpected message mid-round");
      }
      perform(core_.onResult(announce->result, announce->ctx));
    } else {
      throw ProtocolError("participant: unexpected message type");
    }
  }

  if (core_.isStart()) {
    // Termination (§3.3): the announcement circles the ring once and dies
    // back here.  Stale retransmitted tokens may trickle in ahead of it.
    while (true) {
      const net::Message msg = awaitMessage();
      if (const auto* announce = std::get_if<net::ResultAnnouncement>(&msg)) {
        if (announce->queryId != config_.queryId) {
          throw ProtocolError(
              "start node: expected the result announcement back");
        }
        break;
      }
      if (!std::holds_alternative<net::RoundToken>(msg)) {
        throw ProtocolError(
            "start node: expected the result announcement back");
      }
    }
  }

  DistributedMetrics& metrics = distributedMetrics();
  metrics.queries.inc();
  metrics.randomized.inc(core_.passCounts().randomized);
  metrics.real.inc(core_.passCounts().real);
  metrics.passthrough.inc(core_.passCounts().passthrough);
  return core_.result();
}

TopKVector runDistributedQuery(const std::vector<TopKVector>& localTopK,
                               net::Transport& transport,
                               DistributedConfig config, Rng& rng) {
  const std::size_t n = localTopK.size();
  if (config.ringOrder.size() != n) {
    throw ConfigError("runDistributedQuery: ring order size mismatch");
  }

  std::vector<std::future<TopKVector>> futures;
  futures.reserve(n);
  std::vector<Rng> rngs;
  rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rngs.push_back(rng.fork(i));

  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(std::async(std::launch::async, [&, i] {
      DistributedParticipant participant(static_cast<NodeId>(i), localTopK[i],
                                         transport, config, rngs[i]);
      return participant.run();
    }));
  }

  TopKVector result;
  bool first = true;
  for (auto& f : futures) {
    TopKVector r = f.get();
    if (first) {
      result = std::move(r);
      first = false;
    } else if (r != result) {
      throw ProtocolError("runDistributedQuery: nodes disagree on the result");
    }
  }
  return result;
}

}  // namespace privtopk::protocol
