// Synchronous in-memory protocol execution - the fast path used by the
// Monte-Carlo experiment harnesses (no transports or threads; one run of
// n=4, r=15 takes microseconds).
//
// The runner implements the full protocol structure of §3.2-§3.4:
// initialization (local sort + local top-k, random ring mapping, random
// starting node, initial global vector at the domain minimum), multiple
// rounds of token passing with the configured local algorithm, and
// termination after the round budget.  Every intermediate value is
// recorded in an ExecutionTrace for the privacy evaluator.

#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "protocol/core.hpp"
#include "protocol/params.hpp"
#include "protocol/trace.hpp"

namespace privtopk::protocol {

struct RunResult {
  TopKVector result;
  ExecutionTrace trace;
  Round rounds = 0;
  /// Ring messages carrying round tokens (rounds * n), excluding the final
  /// result dissemination pass (+n, reported separately).
  std::size_t tokenMessages = 0;
  std::size_t totalMessages = 0;
};

class RingQueryRunner {
 public:
  RingQueryRunner(ProtocolParams params, ProtocolKind kind);

  /// Runs one query.  `localValues[i]` is node i's raw value set (the
  /// runner performs the local sort/top-k initialization step).  `rng`
  /// drives ring mapping, starting-node selection and the randomized
  /// algorithms; reuse one Rng across trials for independent randomness.
  [[nodiscard]] RunResult run(const std::vector<std::vector<Value>>& localValues,
                              Rng& rng) const;

  /// Same, with explicit ring order and/or per-node algorithm seeds (see
  /// core::EngineOverrides) for cross-engine determinism tests.
  [[nodiscard]] RunResult run(const std::vector<std::vector<Value>>& localValues,
                              Rng& rng,
                              const core::EngineOverrides& overrides) const;

  /// Bottom-k variant: finds the k SMALLEST values by running the protocol
  /// on mirrored values (v -> min+max-v), mirroring back.  Used by the kNN
  /// extension where small distances win.
  [[nodiscard]] RunResult runBottomK(
      const std::vector<std::vector<Value>>& localValues, Rng& rng) const;

  [[nodiscard]] const ProtocolParams& params() const { return params_; }
  [[nodiscard]] ProtocolKind kind() const { return kind_; }

 private:
  ProtocolParams params_;
  ProtocolKind kind_;
};

/// Convenience single-call API: top-k of `localValues` with the
/// probabilistic protocol and paper-default parameters.
[[nodiscard]] TopKVector queryTopK(
    const std::vector<std::vector<Value>>& localValues, std::size_t k,
    Rng& rng, const ProtocolParams* paramsOverride = nullptr);

/// Convenience max query (k = 1).
[[nodiscard]] Value queryMax(const std::vector<std::vector<Value>>& localValues,
                             Rng& rng,
                             const ProtocolParams* paramsOverride = nullptr);

}  // namespace privtopk::protocol
