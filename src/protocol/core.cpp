#include "protocol/core.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "sim/ring.hpp"

namespace privtopk::protocol::core {

void requireRingSize(std::size_t ringSize, const char* context) {
  if (!meetsPrivacyFloor(ringSize)) {
    throw ConfigError(std::string(context) +
                      ": the protocol requires >= 3 nodes (privacy floor)");
  }
}

bool onRing(const std::vector<NodeId>& order, NodeId node) {
  return std::find(order.begin(), order.end(), node) != order.end();
}

std::size_t ringPosition(const std::vector<NodeId>& order, NodeId node) {
  const auto it = std::find(order.begin(), order.end(), node);
  if (it == order.end()) {
    throw Error("ringPosition: node is not on the ring");
  }
  return static_cast<std::size_t>(std::distance(order.begin(), it));
}

NodeId ringSuccessor(const std::vector<NodeId>& order, NodeId node) {
  const std::size_t pos = ringPosition(order, node);
  return order[(pos + 1) % order.size()];
}

RepairOutcome repairRing(std::vector<NodeId>& order, NodeId failed) {
  RepairOutcome outcome;
  outcome.applied = sim::repairRingOrder(order, failed);
  outcome.belowFloor = !meetsPrivacyFloor(order.size());
  return outcome;
}

std::vector<NodeId> remapRing(std::vector<NodeId> order, NodeId controller,
                              Rng& rng) {
  rng.shuffle(order);
  const auto it = std::find(order.begin(), order.end(), controller);
  if (it == order.end()) {
    throw Error("remapRing: controller is not on the ring");
  }
  std::rotate(order.begin(), it, order.end());
  return order;
}

TopKVector localTopK(const std::vector<Value>& values, std::size_t k) {
  TopKVector v = values;
  const std::size_t take = std::min(k, v.size());
  std::partial_sort(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(take),
                    v.end(), std::greater<>());
  v.resize(take);
  return v;
}

std::unique_ptr<LocalAlgorithm> makeLocalAlgorithm(ProtocolKind kind,
                                                   const ProtocolParams& params,
                                                   Rng& rng) {
  params.validate();
  validateMechanismFor(kind, params);
  return makeMechanism(params.mechanism)->makeAlgorithm(kind, params, rng);
}

Round roundBudget(ProtocolKind kind, const ProtocolParams& params) {
  validateMechanismFor(kind, params);
  return makeMechanism(params.mechanism)->roundBudget(kind, params);
}

Participant::Participant(ParticipantConfig config, TopKVector localTopK,
                         std::unique_ptr<LocalAlgorithm> algorithm)
    : queryId_(config.queryId),
      self_(config.self),
      ringOrder_(std::move(config.ringOrder)),
      params_(std::move(config.params)),
      trace_(config.trace),
      spanSink_(config.spanSink),
      local_(std::move(localTopK)),
      algorithm_(std::move(algorithm)) {
  params_.validate();
  validateMechanismFor(config.kind, params_);
  requireRingSize(ringOrder_.size(), "core::Participant");
  if (!onRing(ringOrder_, self_)) {
    throw ConfigError("core::Participant: node is not on the ring");
  }
  mechanism_ = makeMechanism(params_.mechanism);
  rounds_ = mechanism_->roundBudget(config.kind, params_);
  algorithm_->reset(local_);
  if (trace_ != nullptr) {
    trace_->nodeCount = std::max(trace_->nodeCount, ringOrder_.size());
    trace_->k = params_.k;
    trace_->rounds = rounds_;
    if (trace_->initialOrder.empty()) trace_->initialOrder = ringOrder_;
    const auto slot = static_cast<std::size_t>(self_);
    if (trace_->localVectors.size() <= slot) {
      trace_->localVectors.resize(slot + 1);
    }
    trace_->localVectors[slot] = local_;
  }
}

const std::vector<NodeId>& Participant::activeOrder() const {
  if (cachedRound_ != wireRound_ || cachedOrder_.empty()) {
    cachedOrder_ = mechanism_->orderForRound(ringOrder_, wireRound_, queryId_);
    cachedRound_ = wireRound_;
  }
  return cachedOrder_;
}

TopKVector Participant::process(Round round, const TopKVector& input) {
  // Outgoing routing (and the traced position) follows the ordering of
  // the round being processed from here on.
  wireRound_ = round;
  TopKVector output = algorithm_->step(input, round);
  if (trace_ != nullptr) {
    trace_->steps.push_back(TraceStep{round, position(), self_, input, output});
  }
  lastProcessed_ = round;
  return output;
}

Actions Participant::finish(Actions actions, const TopKVector& result,
                            const obs::TraceContext& ctx) {
  // The result announcement circulates on the final round's ordering; every
  // node pins it regardless of which round it last processed.
  wireRound_ = rounds_;
  result_ = result;
  completed_ = true;
  if (trace_ != nullptr) trace_->result = result_;
  actions.completed = true;
  actions.sendResult = net::ResultAnnouncement{queryId_, result_, ctx};
  return actions;
}

obs::TraceContext Participant::emitSpan(const obs::TraceContext& in,
                                        const char* name, Round round,
                                        std::int64_t startNs,
                                        std::int64_t queueNs) {
  if (spanSink_ == nullptr || !in.active()) return in;
  obs::SpanRecord span;
  span.traceId = in.traceId;
  span.spanId = obs::allocateSpanId();
  span.parentSpanId = in.parentSpanId;
  span.name = name;
  span.queryId = queryId_;
  span.node = self_;
  span.round = round;
  span.startNs = startNs;
  span.durNs = obs::EventTracer::nowNs() - startNs;
  span.queueNs = queueNs;
  spanSink_->recordSpan(span);
  return obs::TraceContext{in.traceId, span.spanId};
}

Actions Participant::onStart(obs::TraceContext ctx) {
  if (!isStart()) {
    throw Error("core::Participant: onStart on a non-start node");
  }
  if (started_) throw Error("core::Participant: query already started");
  started_ = true;
  const std::int64_t t0 = spanSink_ != nullptr && ctx.active()
                              ? obs::EventTracer::nowNs()
                              : 0;
  // Initial global vector: k copies of the domain minimum (§3.4).
  const TopKVector initial(params_.k, params_.domain.min);
  Actions actions;
  TopKVector out = process(1, initial);
  actions.sendToken = net::RoundToken{queryId_, 1, std::move(out),
                                      emitSpan(ctx, "ring_round", 1, t0, 0)};
  return actions;
}

Actions Participant::onToken(Round round, const TopKVector& vector,
                             obs::TraceContext ctx, std::int64_t queueNs) {
  Actions actions;
  if (completed_ || aborted_) {
    actions.duplicate = true;
    return actions;
  }
  const std::int64_t t0 = spanSink_ != nullptr && ctx.active()
                              ? obs::EventTracer::nowNs()
                              : 0;
  if (isStart()) {
    // The token circled back: close the round it carries.  A repair may
    // have promoted this node mid-round, in which case it legitimately
    // closes a round it processed (or never saw) as a follower.
    started_ = true;
    if (round <= lastClosed_) {
      actions.duplicate = true;  // a retransmission of a closed round
      return actions;
    }
    actions.roundClosed = true;
    lastClosed_ = round;
    if (round >= rounds_) {
      return finish(actions, vector,
                    emitSpan(ctx, "ring_round", round, t0, queueNs));
    }
    TopKVector out = process(round + 1, vector);
    actions.sendToken =
        net::RoundToken{queryId_, round + 1, std::move(out),
                        emitSpan(ctx, "ring_round", round + 1, t0, queueNs)};
    return actions;
  }
  if (round <= lastProcessed_) {
    actions.duplicate = true;  // pass-once semantics per round
    return actions;
  }
  TopKVector out = process(round, vector);
  actions.sendToken =
      net::RoundToken{queryId_, round, std::move(out),
                      emitSpan(ctx, "ring_round", round, t0, queueNs)};
  return actions;
}

Actions Participant::onResult(const TopKVector& result,
                              obs::TraceContext ctx) {
  Actions actions;
  if (completed_ || aborted_) {
    actions.completed = completed_;
    actions.duplicate = true;
    return actions;
  }
  const std::int64_t t0 = spanSink_ != nullptr && ctx.active()
                              ? obs::EventTracer::nowNs()
                              : 0;
  // Forward once; the announcement dies when it reaches the start node.
  return finish(actions, result,
                emitSpan(ctx, "result_dissemination", 0, t0, 0));
}

RepairOutcome Participant::onPeerDead(NodeId failed) {
  if (failed == self_) return RepairOutcome{};  // we are demonstrably alive
  const RepairOutcome outcome = repairRing(ringOrder_, failed);
  cachedOrder_.clear();  // derived orders must re-derive off the repaired base
  if (outcome.applied && outcome.belowFloor && !completed_ && !aborted_) {
    aborted_ = true;
    abortReason_ = "ring shrank below the privacy floor after repair";
  }
  return outcome;
}

void Participant::setRingOrder(std::vector<NodeId> order) {
  if (!onRing(order, self_)) {
    throw Error("core::Participant: remap drops this node from the ring");
  }
  ringOrder_ = std::move(order);
  cachedOrder_.clear();
}

}  // namespace privtopk::protocol::core
