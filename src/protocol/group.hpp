// Group-parallel execution (paper §4.2): "break the set of n nodes into a
// number of small groups and have each group compute their group maximum
// value in parallel and then compute the global maximum value at
// designated nodes, which could be randomly selected from each small
// group."
//
// Generalized to top-k: each group runs the full probabilistic protocol on
// its members' values; a randomly chosen delegate per group then joins a
// second-level ring carrying its group's top-k vector as its local input.
// Because every round costs O(ring size) messages but the round count is
// independent of n (§4.2), grouping trades a second protocol phase for
// much smaller rings.

#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "protocol/runner.hpp"
#include "protocol/sim_engine.hpp"

namespace privtopk::protocol {

struct GroupedRunResult {
  TopKVector result;
  /// Ring messages across all group-level runs plus the delegate run.
  std::size_t totalMessages = 0;
  /// Messages on the longest group-phase run plus the delegate run - the
  /// critical path when groups execute in parallel.
  std::size_t criticalPathMessages = 0;
  std::size_t groups = 0;
};

/// Runs the grouped protocol.  `groupSize` must be >= 3 (each group ring
/// needs three nodes); the last group absorbs the remainder when n is not
/// divisible.  The delegate phase requires at least 3 groups; with fewer,
/// the call falls back to one flat run and reports groups = 1.
[[nodiscard]] GroupedRunResult runGrouped(
    const std::vector<std::vector<Value>>& localValues,
    const ProtocolParams& params, std::size_t groupSize, Rng& rng);

struct GroupedSimulatedResult {
  TopKVector result;
  /// Virtual completion time with all groups executing in parallel:
  /// max over groups + the delegate phase.
  sim::SimTime completionTime = 0.0;
  /// Virtual completion time of the flat single-ring run on the same data
  /// and latency model, for comparison.
  sim::SimTime flatCompletionTime = 0.0;
  std::size_t groups = 0;
};

/// The §4.2 claim measured in virtual time: runs every group through the
/// event simulator under `latency` (nullptr = 1 ms fixed), takes the max
/// group time (parallel phase), adds the delegate-ring time, and runs the
/// flat protocol for reference.  Falls back to groups = 1 like runGrouped.
[[nodiscard]] GroupedSimulatedResult runGroupedSimulated(
    const std::vector<std::vector<Value>>& localValues,
    const ProtocolParams& params, std::size_t groupSize,
    const sim::LatencyModel* latency, Rng& rng);

}  // namespace privtopk::protocol
