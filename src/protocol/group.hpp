// Group-parallel execution (paper §4.2): "break the set of n nodes into a
// number of small groups and have each group compute their group maximum
// value in parallel and then compute the global maximum value at
// designated nodes, which could be randomly selected from each small
// group."
//
// Generalized to top-k: each group runs the full probabilistic protocol on
// its members' values; a randomly chosen delegate per group then joins a
// second-level ring carrying its group's top-k vector as its local input.
// Because every round costs O(ring size) messages but the round count is
// independent of n (§4.2), grouping trades a second protocol phase for
// much smaller rings.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "protocol/runner.hpp"
#include "protocol/sim_engine.hpp"

namespace privtopk::protocol {

// ---------------------------------------------------------------------------
// Deterministic derivations shared by the distributed NodeService and the
// in-memory engines.  A grouped service run is fully determined by the
// coordinator's seed, the participants' seeds and the parent query id, so
// the runner/simulator can replay it bit-for-bit (see runGroupedWithPlan
// and tests/integration/engine_equivalence_test.cpp).

/// Seed of the Rng that draws the group partition + delegate selection at
/// the coordinating node.
[[nodiscard]] constexpr std::uint64_t groupLayoutSeed(
    std::uint64_t coordinatorSeed, std::uint64_t queryId) {
  return splitmix64(splitmix64(coordinatorSeed) ^ splitmix64(queryId) ^
                    0x6c61796f757431ULL);
}

/// Seed of a node's local-algorithm Rng for one phase of a grouped query
/// (phase 1 = group ring, phase 2 = merge ring).  Derived, not forked: the
/// node's main Rng stream is left untouched so flat queries stay
/// reproducible regardless of grouped traffic.
[[nodiscard]] constexpr std::uint64_t groupPhaseSeed(
    std::uint64_t nodeSeed, std::uint64_t parentQueryId, std::uint8_t phase) {
  return splitmix64(splitmix64(nodeSeed) ^
                    splitmix64(parentQueryId * 4 + phase));
}

/// Wire id of group `group`'s phase-1 sub-query of `parentQueryId`.
[[nodiscard]] constexpr std::uint64_t groupSubQueryId(
    std::uint64_t parentQueryId, std::size_t group) {
  return splitmix64(parentQueryId ^ splitmix64(0x67726f7570ULL + group));
}

/// Wire id of the phase-2 merge sub-query of `parentQueryId`.
[[nodiscard]] constexpr std::uint64_t mergeQueryId(
    std::uint64_t parentQueryId) {
  return splitmix64(parentQueryId ^ 0x6d65726765ULL);
}

/// A concrete §4.2 grouping of named nodes: who rings with whom, and which
/// delegates form the merge ring.
struct GroupLayout {
  /// Group rings.  groups[0] is the coordinator's own group with the
  /// coordinator first; every group's front node is its delegate (the
  /// random shuffle makes the other delegates "randomly selected from each
  /// small group", §4.2).
  std::vector<std::vector<NodeId>> groups;
  /// The second-phase ring: one delegate per group, coordinator first, in
  /// group order.
  std::vector<NodeId> mergeRing;
};

/// Partitions `nodes` into n/groupSize groups (remainder spread
/// round-robin) after a random shuffle of `rng`.  Requires groupSize >= 3
/// and at least 3 groups; `coordinator` must be one of `nodes` and ends up
/// first in groups[0] and on mergeRing.
[[nodiscard]] GroupLayout makeGroupLayout(const std::vector<NodeId>& nodes,
                                          NodeId coordinator,
                                          std::size_t groupSize, Rng& rng);

/// An explicit grouped execution plan over value-set indices, used to
/// replay a distributed grouped run (or to test arbitrary partitions).
/// Each group's front index is its delegate; the merge ring follows group
/// order with groups[0]'s delegate first.
struct GroupPlan {
  /// Disjoint groups covering every index 0..n-1 exactly once; each group
  /// needs >= 3 members and there must be >= 3 groups.
  std::vector<std::vector<std::size_t>> groups;
  /// Optional per-member algorithm seeds, one inner vector per group
  /// (core::EngineOverrides::nodeSeeds semantics).  Empty = draw from the
  /// shared rng.
  std::vector<std::vector<std::uint64_t>> groupSeeds;
  /// Optional per-delegate algorithm seeds for the merge ring.
  std::vector<std::uint64_t> mergeSeeds;
};

struct GroupedRunResult {
  TopKVector result;
  /// Ring messages across all group-level runs plus the delegate run.
  std::size_t totalMessages = 0;
  /// Messages on the longest group-phase run plus the delegate run - the
  /// critical path when groups execute in parallel.
  std::size_t criticalPathMessages = 0;
  std::size_t groups = 0;
};

/// Runs the grouped protocol.  `groupSize` must be >= 3 (each group ring
/// needs three nodes); the last group absorbs the remainder when n is not
/// divisible.  The delegate phase requires at least 3 groups; with fewer,
/// the call falls back to one flat run and reports groups = 1.
[[nodiscard]] GroupedRunResult runGrouped(
    const std::vector<std::vector<Value>>& localValues,
    const ProtocolParams& params, std::size_t groupSize, Rng& rng);

/// Same, with an explicit protocol kind (the legacy overload above runs
/// ProtocolKind::Probabilistic).
[[nodiscard]] GroupedRunResult runGrouped(
    const std::vector<std::vector<Value>>& localValues,
    const ProtocolParams& params, ProtocolKind kind, std::size_t groupSize,
    Rng& rng);

/// Replays an explicit grouped plan through the synchronous runner: every
/// group runs on the identity ring over its member order (member order IS
/// the ring order, exactly like a NodeService group ring), then the
/// delegates' results merge on a second identity ring.  With
/// plan.groupSeeds/mergeSeeds pinned this is bit-identical to a
/// distributed grouped run under the same seeds.
[[nodiscard]] GroupedRunResult runGroupedWithPlan(
    const std::vector<std::vector<Value>>& localValues,
    const ProtocolParams& params, ProtocolKind kind, const GroupPlan& plan,
    Rng& rng);

struct GroupedSimulatedResult {
  TopKVector result;
  /// Virtual completion time with all groups executing in parallel:
  /// max over groups + the delegate phase.
  sim::SimTime completionTime = 0.0;
  /// Virtual completion time of the flat single-ring run on the same data
  /// and latency model, for comparison.
  sim::SimTime flatCompletionTime = 0.0;
  std::size_t groups = 0;
};

/// The §4.2 claim measured in virtual time: runs every group through the
/// event simulator under `latency` (nullptr = 1 ms fixed), takes the max
/// group time (parallel phase), adds the delegate-ring time, and runs the
/// flat protocol for reference.  Falls back to groups = 1 like runGrouped.
[[nodiscard]] GroupedSimulatedResult runGroupedSimulated(
    const std::vector<std::vector<Value>>& localValues,
    const ProtocolParams& params, std::size_t groupSize,
    const sim::LatencyModel* latency, Rng& rng);

/// Plan replay through the event simulator (see runGroupedWithPlan).
/// completionTime is max-over-groups plus the merge ring;
/// flatCompletionTime is not computed (left 0) by the plan variant.
[[nodiscard]] GroupedSimulatedResult runGroupedSimulatedWithPlan(
    const std::vector<std::vector<Value>>& localValues,
    const ProtocolParams& params, ProtocolKind kind, const GroupPlan& plan,
    const sim::LatencyModel* latency, Rng& rng);

}  // namespace privtopk::protocol
