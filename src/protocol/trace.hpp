// Execution traces: everything an observer could see during a protocol
// run, recorded for the privacy analysis.
//
// A step is one local-algorithm invocation: node `node`, sitting at ring
// position `position` in round `round`, received `input` and emitted
// `output` (which its successor observes).  The trace also keeps each
// node's private local vector so the privacy evaluator can score
// adversarial claims against ground truth - the evaluator is the only
// component allowed to look at both sides.

#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace privtopk::protocol {

struct TraceStep {
  Round round = 1;
  std::size_t position = 0;  // ring position within the round's mapping
  NodeId node = 0;
  TopKVector input;
  TopKVector output;
};

struct ExecutionTrace {
  /// Steps in execution order.
  std::vector<TraceStep> steps;

  /// The final query answer (sorted descending, k entries).
  TopKVector result;

  /// localVectors[node] = that node's private local top-k input.
  std::vector<TopKVector> localVectors;

  /// Ring order of round 1 (order[0] is the starting node).  With
  /// per-round remapping later rounds use different orders; consult
  /// TraceStep::position per step.
  std::vector<NodeId> initialOrder;

  std::size_t nodeCount = 0;
  std::size_t k = 1;
  Round rounds = 0;
};

}  // namespace privtopk::protocol
