// Protocol configuration (the paper's Table 1 parameters plus engineering
// knobs) and the protocol variants under study.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "common/types.hpp"

namespace privtopk::protocol {

/// Which protocol runs on the ring.
enum class ProtocolKind {
  /// The paper's contribution: randomized local algorithm, random ring
  /// mapping and starting node, multiple rounds (§3.3/§3.4).
  Probabilistic,
  /// One-round deterministic merge with a FIXED starting node and identity
  /// ring (§3.1 baseline).
  Naive,
  /// The naive protocol with a random ring/starting node ("anonymous naive"
  /// in §5.3).
  AnonymousNaive,
};

[[nodiscard]] const char* toString(ProtocolKind kind);

/// Which privacy mechanism shapes a node's per-round contribution.  The
/// mechanism is orthogonal to ProtocolKind: it decides HOW a node hides
/// its values, while the kind decides the ring structure it rides on.
/// Enumerator values are the wire ids (query/descriptor.hpp,
/// net/message.hpp); never renumber.
enum class MechanismKind : std::uint8_t {
  /// The paper's Eq.-2 probabilistic schedule (Algorithm 1/2): with
  /// probability Pr(r) = p0*d^(r-1) a node injects bounded noise instead
  /// of its real contribution.  The classic default.
  Schedule = 0,
  /// Collusion-resistant segmented circulation (k-secure-sum style, per
  /// Sheikh et al.): each node splits its top-k into `segments` parts and
  /// contributes one part per round, with every round riding a distinct
  /// derived ring ordering.  Exact after `segments` rounds.
  Segmented = 1,
  /// Local differential privacy: each node perturbs its values once with
  /// bounded discrete-Laplace noise parameterized by `ldpEpsilon`, then
  /// runs a single deterministic merge round.
  Ldp = 2,
};

[[nodiscard]] const char* toString(MechanismKind kind);

/// Segment-count bounds for MechanismKind::Segmented (wire-validated).
inline constexpr std::uint32_t kMinSegments = 2;
inline constexpr std::uint32_t kMaxSegments = 64;

/// Mechanism selection plus its knobs.  Only the knob matching `kind` is
/// meaningful (segments for Segmented, ldpEpsilon for Ldp); the others are
/// ignored, excluded from equality, and normalized away on the wire.
struct MechanismSpec {
  MechanismKind kind = MechanismKind::Schedule;
  /// Number of segments / derived ring orderings (Segmented only).
  std::uint32_t segments = 4;
  /// Local-DP epsilon; smaller = noisier (Ldp only).
  double ldpEpsilon = 1.0;

  /// Throws ConfigError when the knob matching `kind` is out of range.
  void validate() const;

  /// Compares `kind` and the knobs that kind actually consults.
  friend bool operator==(const MechanismSpec& a, const MechanismSpec& b);
};

struct ProtocolParams {
  /// Number of results to select (k = 1 is the max query).
  std::size_t k = 1;

  /// Initial randomization probability p0 (Eq. 2).
  double p0 = 1.0;

  /// Dampening factor d (Eq. 2).  The paper's default pick after the
  /// Figure 9 tradeoff study is (p0, d) = (1, 1/2).
  double d = 0.5;

  /// Minimum width of the random range in Algorithm 2's randomization
  /// branch (the paper's delta); must be >= 1 on an integer domain.
  Value delta = 1;

  /// Publicly known value domain.
  Domain domain = kPaperDomain;

  /// Explicit round budget.  When unset, the engine derives the paper's
  /// r_min from `epsilon` via Eq. 4 (probabilistic protocol only; the naive
  /// variants always run exactly one round).
  std::optional<Round> rounds;

  /// Precision target 1 - epsilon used when `rounds` is unset.
  double epsilon = 0.001;

  /// Re-randomize the ring mapping at every round (§4.3 collusion
  /// hardening).  The classic protocol keeps one mapping for all rounds.
  /// Only meaningful for the Schedule mechanism (Segmented derives its own
  /// per-round orderings; Ldp runs one round).
  bool remapEachRound = false;

  /// Privacy mechanism driving the per-round contribution (see
  /// protocol/mechanism.hpp for the implementations).
  MechanismSpec mechanism;

  /// Throws ConfigError when any field is out of range.
  void validate() const;

  /// The round budget this configuration implies (>= 1).
  [[nodiscard]] Round effectiveRounds() const;
};

}  // namespace privtopk::protocol
