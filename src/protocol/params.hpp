// Protocol configuration (the paper's Table 1 parameters plus engineering
// knobs) and the protocol variants under study.

#pragma once

#include <cstddef>
#include <optional>

#include "common/types.hpp"

namespace privtopk::protocol {

/// Which protocol runs on the ring.
enum class ProtocolKind {
  /// The paper's contribution: randomized local algorithm, random ring
  /// mapping and starting node, multiple rounds (§3.3/§3.4).
  Probabilistic,
  /// One-round deterministic merge with a FIXED starting node and identity
  /// ring (§3.1 baseline).
  Naive,
  /// The naive protocol with a random ring/starting node ("anonymous naive"
  /// in §5.3).
  AnonymousNaive,
};

[[nodiscard]] const char* toString(ProtocolKind kind);

struct ProtocolParams {
  /// Number of results to select (k = 1 is the max query).
  std::size_t k = 1;

  /// Initial randomization probability p0 (Eq. 2).
  double p0 = 1.0;

  /// Dampening factor d (Eq. 2).  The paper's default pick after the
  /// Figure 9 tradeoff study is (p0, d) = (1, 1/2).
  double d = 0.5;

  /// Minimum width of the random range in Algorithm 2's randomization
  /// branch (the paper's delta); must be >= 1 on an integer domain.
  Value delta = 1;

  /// Publicly known value domain.
  Domain domain = kPaperDomain;

  /// Explicit round budget.  When unset, the engine derives the paper's
  /// r_min from `epsilon` via Eq. 4 (probabilistic protocol only; the naive
  /// variants always run exactly one round).
  std::optional<Round> rounds;

  /// Precision target 1 - epsilon used when `rounds` is unset.
  double epsilon = 0.001;

  /// Re-randomize the ring mapping at every round (§4.3 collusion
  /// hardening).  The classic protocol keeps one mapping for all rounds.
  bool remapEachRound = false;

  /// Throws ConfigError when any field is out of range.
  void validate() const;

  /// The round budget this configuration implies (>= 1).
  [[nodiscard]] Round effectiveRounds() const;
};

}  // namespace privtopk::protocol
