// The sans-I/O protocol core: ONE implementation of the paper's ring
// protocol (§3.2-§3.4) shared by every execution engine.
//
// The core is transport-agnostic and event-driven.  A driver feeds inputs
// in (onStart / onToken / onResult / onPeerDead) and maps the returned
// effects onto its own substrate:
//
//   * Actions::sendToken / Actions::sendResult  -> deliver to the ring
//     successor (synchronously, through an event queue, or over a real
//     net::Transport);
//   * ParticipantConfig::trace                  -> RecordTraceStep: every
//     local-algorithm invocation is appended to the sink as it happens;
//   * Actions::completed                        -> FlushPassCounts: the
//     driver reads passCounts() once and flushes them to its metric cells;
//   * aborted()/abortReason()                   -> Abort: the ring shrank
//     below the privacy floor and the query cannot continue.
//
// Four drivers exist: protocol::RingQueryRunner (synchronous Monte-Carlo
// loop), protocol::runSimulatedQuery (virtual-time event queue),
// protocol::DistributedParticipant (blocking transport) and
// query::NodeService (long-running daemon).  They contain NO ring
// arithmetic, round bookkeeping or termination logic of their own - this
// header is the single home of all of it.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/message.hpp"
#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "protocol/local_algorithm.hpp"
#include "protocol/mechanism.hpp"
#include "protocol/params.hpp"
#include "protocol/trace.hpp"

namespace privtopk::protocol::core {

// ---------------------------------------------------------------------------
// Privacy floor (§4.1): with fewer than 3 participants the two neighbours
// of a node can reconstruct its contribution, so every engine refuses to
// run - and aborts a repaired ring that shrank - below this size.
// ---------------------------------------------------------------------------

inline constexpr std::size_t kMinRingSize = 3;

[[nodiscard]] constexpr bool meetsPrivacyFloor(std::size_t ringSize) {
  return ringSize >= kMinRingSize;
}

/// Throws ConfigError("<context>: ...") unless `ringSize` meets the floor.
void requireRingSize(std::size_t ringSize, const char* context);

// ---------------------------------------------------------------------------
// Ring-position math.  `order[i]` is the node at ring position i and
// `order.front()` is the starting node; this is the only place that
// indexes a ring order.
// ---------------------------------------------------------------------------

[[nodiscard]] bool onRing(const std::vector<NodeId>& order, NodeId node);

/// Position of `node` on the ring; throws Error when absent.
[[nodiscard]] std::size_t ringPosition(const std::vector<NodeId>& order,
                                       NodeId node);

/// The node `node` hands the token to; throws Error when `node` is absent.
[[nodiscard]] NodeId ringSuccessor(const std::vector<NodeId>& order,
                                   NodeId node);

struct RepairOutcome {
  /// False when `failed` was not on the ring (repair already applied).
  bool applied = false;
  /// True when the surviving ring no longer meets the privacy floor; the
  /// query must abort.
  bool belowFloor = false;
};

/// The paper's §3.2 repair rule: splice `failed` out, connecting its
/// predecessor and successor, and report whether the survivors still meet
/// the privacy floor.
RepairOutcome repairRing(std::vector<NodeId>& order, NodeId failed);

/// §4.3 collusion hardening: a fresh random mapping over the live nodes,
/// rotated so `controller` keeps position 0 (it still drives the rounds).
[[nodiscard]] std::vector<NodeId> remapRing(std::vector<NodeId> order,
                                            NodeId controller, Rng& rng);

// ---------------------------------------------------------------------------
// Local initialization (§3.4).
// ---------------------------------------------------------------------------

/// Sort descending and keep the k largest values.
[[nodiscard]] TopKVector localTopK(const std::vector<Value>& values,
                                   std::size_t k);

/// Stream-separation tag used when forking a node's algorithm Rng out of a
/// shared engine Rng (see makeLocalAlgorithm).
inline constexpr std::uint64_t kAlgorithmRngTag = 0x5a17;

/// Builds the local-algorithm instance the configured privacy mechanism
/// requires (delegates to makeMechanism(params.mechanism)).  Randomizing
/// mechanisms fork `rng` (with kAlgorithmRngTag) so each node owns an
/// independent stream; deterministic ones draw nothing.
[[nodiscard]] std::unique_ptr<LocalAlgorithm> makeLocalAlgorithm(
    ProtocolKind kind, const ProtocolParams& params, Rng& rng);

/// The round budget a configuration implies (delegates to the privacy
/// mechanism): the paper's r_min (Eq. 4) for the probabilistic schedule,
/// `segments` for the segmented mechanism, one round for LDP and the naive
/// variants.
[[nodiscard]] Round roundBudget(ProtocolKind kind,
                                const ProtocolParams& params);

// ---------------------------------------------------------------------------
// Engine-facing knobs shared by the in-memory drivers (runner + simulator).
// ---------------------------------------------------------------------------

/// Optional determinism overrides for the in-memory engines, letting a
/// test pin the ring and the per-node randomness to match another engine
/// bit for bit (see tests/integration/engine_equivalence_test.cpp).
struct EngineOverrides {
  /// Explicit ring order (a permutation of 0..n-1; front() starts).
  /// Empty: the engine draws its default mapping (identity for the naive
  /// baseline, random otherwise).
  std::vector<NodeId> ringOrder;
  /// Per-node algorithm seeds: node i's algorithm draws exactly the
  /// stream a NodeService seeded with nodeSeeds[i] would use for its
  /// first query.  Empty: algorithms fork off the engine Rng as usual.
  std::vector<std::uint64_t> nodeSeeds;
};

// ---------------------------------------------------------------------------
// The participant state machine.
// ---------------------------------------------------------------------------

struct ParticipantConfig {
  std::uint64_t queryId = 0;
  NodeId self = 0;
  /// Agreed ring order; ringOrder.front() is the starting node.
  std::vector<NodeId> ringOrder;
  ProtocolKind kind = ProtocolKind::Probabilistic;
  /// Protocol parameters with k already resolved to the effective k.
  ProtocolParams params;
  /// Optional trace sink (RecordTraceStep effect).  May be shared by all
  /// participants of one run (in-memory engines) or private to this node
  /// (distributed engines).  Must outlive the Participant.
  ExecutionTrace* trace = nullptr;
  /// Optional distributed-tracing sink.  When set and an input carries an
  /// active obs::TraceContext, every processed input emits one child span
  /// ("ring_round" / "result_dissemination") and the outgoing message is
  /// stamped with the child context, extending the cross-node chain.  A
  /// null sink or an inactive context costs nothing - the context just
  /// passes through.  Must outlive the Participant.
  obs::TraceSink* spanSink = nullptr;
};

/// Effects returned by every input; the driver performs the I/O.
struct Actions {
  /// Hand this token to the current ring successor.
  std::optional<net::RoundToken> sendToken;
  /// Circulate the final result to the current ring successor (§3.3
  /// termination round).
  std::optional<net::ResultAnnouncement> sendResult;
  /// The input was a duplicate (retransmission) or arrived out of phase;
  /// nothing was processed.  Lenient drivers drop it, strict ones throw.
  bool duplicate = false;
  /// The start node closed a round (drivers count rounds_executed here;
  /// the per-round remap hook also fires on this edge).
  bool roundClosed = false;
  /// The final result is known; result() is valid and the driver should
  /// flush passCounts() to its metrics.
  bool completed = false;
};

/// One ring participant: position bookkeeping, the round budget, duplicate
/// suppression, LocalAlgorithm invocation, trace recording, repair and the
/// privacy-floor abort.  The node at ringOrder.front() doubles as the
/// controller: it deals round r+1 when round r circles back and emits the
/// ResultAnnouncement when the budget is exhausted.  Repair can promote a
/// different node to the front mid-query; the state machine handles the
/// handover (a promoted controller may close a round it already processed
/// as a follower).
class Participant {
 public:
  /// `localTopK` is this node's private input (sorted descending, at most
  /// k values - see core::localTopK).  Takes ownership of `algorithm`.
  /// Throws ConfigError when the ring is below the privacy floor, self is
  /// not on the ring, or the parameters are invalid.
  Participant(ParticipantConfig config, TopKVector localTopK,
              std::unique_ptr<LocalAlgorithm> algorithm);

  // --- Inputs ---

  /// Starts the query (start node only): processes round 1 over the
  /// initial global vector (k copies of the domain minimum, §3.4).
  /// `ctx` is the initiator's trace context (see ParticipantConfig::
  /// spanSink); the default keeps sink-less drivers unchanged.
  [[nodiscard]] Actions onStart(obs::TraceContext ctx = {});

  /// A RoundToken arrived carrying `vector` for `round`.  `ctx` is the
  /// context the token carried on the wire and `queueNs` the time it
  /// waited in the driver's scheduler before this call (recorded on the
  /// emitted span).
  [[nodiscard]] Actions onToken(Round round, const TopKVector& vector,
                                obs::TraceContext ctx = {},
                                std::int64_t queueNs = 0);

  /// A ResultAnnouncement arrived.  Followers adopt the result and forward
  /// the announcement once; a completed node reports a duplicate.
  [[nodiscard]] Actions onResult(const TopKVector& result,
                                 obs::TraceContext ctx = {});

  /// `failed` was detected dead: splice it out (§3.2 repair).  Sets the
  /// aborted state when the survivors fall below the privacy floor.
  RepairOutcome onPeerDead(NodeId failed);

  /// Adopts a fresh ring mapping (per-round remap drivers).  `order` must
  /// contain this node.
  void setRingOrder(std::vector<NodeId> order);

  // --- Observers ---

  [[nodiscard]] NodeId self() const { return self_; }
  /// Controller check: the front of the BASE order (mechanisms must keep
  /// it in front of every derived order).
  [[nodiscard]] bool isStart() const { return ringOrder_.front() == self_; }
  /// The agreed BASE order (repair and announces operate on it); the
  /// per-round order actually routed on is a mechanism derivation of it.
  [[nodiscard]] const std::vector<NodeId>& ringOrder() const {
    return ringOrder_;
  }
  /// Position on the ring ordering of the round currently in flight.
  [[nodiscard]] std::size_t position() const {
    return ringPosition(activeOrder(), self_);
  }
  /// Where the NEXT outgoing message goes: the successor on the ring
  /// ordering of the round currently in flight.  Drivers must route every
  /// send through this (never through the base order).
  [[nodiscard]] NodeId successor() const {
    return ringSuccessor(activeOrder(), self_);
  }
  [[nodiscard]] Round rounds() const { return rounds_; }
  /// Highest round this node's algorithm has processed.
  [[nodiscard]] Round lastProcessedRound() const { return lastProcessed_; }
  [[nodiscard]] bool completed() const { return completed_; }
  [[nodiscard]] bool aborted() const { return aborted_; }
  [[nodiscard]] const std::string& abortReason() const { return abortReason_; }
  /// Valid once completed().
  [[nodiscard]] const TopKVector& result() const { return result_; }
  [[nodiscard]] const TopKVector& localVector() const { return local_; }
  [[nodiscard]] const LocalAlgorithm::PassCounts& passCounts() const {
    return algorithm_->passCounts();
  }

 private:
  /// One local-algorithm invocation + the RecordTraceStep effect.
  [[nodiscard]] TopKVector process(Round round, const TopKVector& input);
  Actions finish(Actions actions, const TopKVector& result,
                 const obs::TraceContext& ctx);
  /// Records one child span of `in` and returns the child context for the
  /// outgoing message; passes `in` through untouched when the sink is null
  /// or the context inactive.
  obs::TraceContext emitSpan(const obs::TraceContext& in, const char* name,
                             Round round, std::int64_t startNs,
                             std::int64_t queueNs);
  /// The ring ordering of the round currently in flight (wireRound_),
  /// derived from the base order by the mechanism and cached until the
  /// round advances or the base order changes.
  [[nodiscard]] const std::vector<NodeId>& activeOrder() const;

  std::uint64_t queryId_ = 0;
  NodeId self_ = 0;
  std::vector<NodeId> ringOrder_;
  ProtocolParams params_;
  std::unique_ptr<PrivacyMechanism> mechanism_;
  ExecutionTrace* trace_ = nullptr;
  obs::TraceSink* spanSink_ = nullptr;
  TopKVector local_;
  std::unique_ptr<LocalAlgorithm> algorithm_;
  Round rounds_ = 1;
  /// The round whose ring ordering outgoing messages ride on: the round
  /// last processed, or rounds_ once the result is circulating.
  Round wireRound_ = 1;
  mutable Round cachedRound_ = 0;
  mutable std::vector<NodeId> cachedOrder_;
  Round lastProcessed_ = 0;  // duplicate suppression (followers)
  Round lastClosed_ = 0;     // duplicate suppression (controller)
  bool started_ = false;
  bool completed_ = false;
  bool aborted_ = false;
  std::string abortReason_;
  TopKVector result_;
};

}  // namespace privtopk::protocol::core
