#include "protocol/mechanism.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "protocol/core.hpp"
#include "protocol/schedule.hpp"

namespace privtopk::protocol {

namespace {

// ---------------------------------------------------------------------------
// Schedule: the paper's probabilistic randomizer, unchanged.
// ---------------------------------------------------------------------------

class ScheduleMechanism final : public PrivacyMechanism {
 public:
  [[nodiscard]] const char* name() const override { return "schedule"; }

  [[nodiscard]] Round roundBudget(ProtocolKind kind,
                                  const ProtocolParams& params) const override {
    return kind == ProtocolKind::Probabilistic ? params.effectiveRounds() : 1;
  }

  [[nodiscard]] std::unique_ptr<LocalAlgorithm> makeAlgorithm(
      ProtocolKind kind, const ProtocolParams& params,
      Rng& rng) const override {
    switch (kind) {
      case ProtocolKind::Probabilistic: {
        auto schedule =
            std::make_shared<const ExponentialSchedule>(params.p0, params.d);
        if (params.k == 1) {
          return std::make_unique<RandomizedMaxAlgorithm>(
              std::move(schedule), rng.fork(core::kAlgorithmRngTag),
              params.domain);
        }
        return std::make_unique<RandomizedTopKAlgorithm>(
            params.k, std::move(schedule), rng.fork(core::kAlgorithmRngTag),
            params.domain, params.delta);
      }
      case ProtocolKind::Naive:
      case ProtocolKind::AnonymousNaive:
        return std::make_unique<NaiveAlgorithm>(params.k);
    }
    throw ConfigError("ScheduleMechanism: unknown protocol kind");
  }
};

// ---------------------------------------------------------------------------
// Segmented: S merge rounds over S derived ring orderings.
// ---------------------------------------------------------------------------

class SegmentedMechanism final : public PrivacyMechanism {
 public:
  [[nodiscard]] const char* name() const override { return "segmented"; }

  [[nodiscard]] Round roundBudget(ProtocolKind /*kind*/,
                                  const ProtocolParams& params) const override {
    return params.mechanism.segments;
  }

  [[nodiscard]] std::unique_ptr<LocalAlgorithm> makeAlgorithm(
      ProtocolKind /*kind*/, const ProtocolParams& params,
      Rng& /*rng*/) const override {
    return std::make_unique<SegmentedMergeAlgorithm>(
        params.k, params.mechanism.segments);
  }

  [[nodiscard]] std::vector<NodeId> orderForRound(
      const std::vector<NodeId>& base, Round round,
      std::uint64_t queryId) const override {
    // Round 1 keeps the agreed order so the announce and the first token
    // share a path (FIFO links guarantee announce-before-token only when
    // they travel the same hops).  Later rounds shuffle everyone but the
    // controller with a seed any participant can derive locally.
    if (round <= 1 || base.size() <= 2) return base;
    std::vector<NodeId> derived = base;
    Rng rng(segmentRingSeed(queryId, round));
    for (std::size_t i = derived.size() - 1; i > 1; --i) {
      std::swap(derived[i], derived[1 + rng.index(i)]);
    }
    return derived;
  }
};

// ---------------------------------------------------------------------------
// Ldp: noise once, merge deterministically.
// ---------------------------------------------------------------------------

class LdpMechanism final : public PrivacyMechanism {
 public:
  [[nodiscard]] const char* name() const override { return "ldp"; }

  [[nodiscard]] Round roundBudget(ProtocolKind /*kind*/,
                                  const ProtocolParams& /*params*/)
      const override {
    return 1;
  }

  [[nodiscard]] std::unique_ptr<LocalAlgorithm> makeAlgorithm(
      ProtocolKind /*kind*/, const ProtocolParams& params,
      Rng& rng) const override {
    return std::make_unique<LdpAlgorithm>(params.k,
                                          params.mechanism.ldpEpsilon,
                                          rng.fork(core::kAlgorithmRngTag),
                                          params.domain);
  }

  [[nodiscard]] Value soundnessSlack(const ProtocolParams& params)
      const override {
    return ldpNoiseBound(params.mechanism.ldpEpsilon);
  }
};

}  // namespace

Value ldpNoiseBound(double epsilon) {
  if (!(epsilon > 0.0)) throw ConfigError("ldpNoiseBound: epsilon must be > 0");
  return static_cast<Value>(std::ceil(6.0 / epsilon));
}

std::vector<NodeId> PrivacyMechanism::orderForRound(
    const std::vector<NodeId>& base, Round /*round*/,
    std::uint64_t /*queryId*/) const {
  return base;
}

Value PrivacyMechanism::soundnessSlack(const ProtocolParams& /*params*/) const {
  return 0;
}

std::unique_ptr<PrivacyMechanism> makeMechanism(const MechanismSpec& spec) {
  spec.validate();
  switch (spec.kind) {
    case MechanismKind::Schedule: return std::make_unique<ScheduleMechanism>();
    case MechanismKind::Segmented:
      return std::make_unique<SegmentedMechanism>();
    case MechanismKind::Ldp: return std::make_unique<LdpMechanism>();
  }
  throw ConfigError("makeMechanism: unknown mechanism kind");
}

void validateMechanismFor(ProtocolKind kind, const ProtocolParams& params) {
  params.mechanism.validate();
  if (params.mechanism.kind != MechanismKind::Schedule &&
      kind != ProtocolKind::Probabilistic) {
    throw ConfigError(
        std::string("the ") + toString(params.mechanism.kind) +
        " mechanism replaces the probabilistic randomizer and requires the "
        "probabilistic protocol kind");
  }
}

// ---------------------------------------------------------------------------
// SegmentedMergeAlgorithm
// ---------------------------------------------------------------------------

SegmentedMergeAlgorithm::SegmentedMergeAlgorithm(std::size_t k,
                                                 std::uint32_t segments)
    : k_(k), segments_(segments) {
  if (k_ == 0) throw ConfigError("SegmentedMergeAlgorithm: k must be >= 1");
  if (segments_ < kMinSegments || segments_ > kMaxSegments) {
    throw ConfigError("SegmentedMergeAlgorithm: segments must be in [2, 64]");
  }
}

void SegmentedMergeAlgorithm::reset(TopKVector localTopK) {
  if (localTopK.size() > k_) {
    throw ConfigError("SegmentedMergeAlgorithm: local vector larger than k");
  }
  if (!std::is_sorted(localTopK.begin(), localTopK.end(), std::greater<>())) {
    throw ConfigError("SegmentedMergeAlgorithm: local vector not sorted");
  }
  // Round-robin deal: part j gets items j, j+S, j+2S... - each part stays
  // sorted descending, and staged top-k merging of the parts is exact
  // (topk(topk(A ∪ B) ∪ C) == topk(A ∪ B ∪ C)).
  parts_.assign(segments_, {});
  for (std::size_t i = 0; i < localTopK.size(); ++i) {
    parts_[i % segments_].push_back(localTopK[i]);
  }
}

const TopKVector& SegmentedMergeAlgorithm::segment(Round r) const {
  if (r < 1 || r > segments_) {
    throw Error("SegmentedMergeAlgorithm: round outside the segment budget");
  }
  return parts_[r - 1];
}

TopKVector SegmentedMergeAlgorithm::step(const TopKVector& incoming, Round r) {
  if (r < 1 || r > segments_) {
    throw ProtocolError(
        "SegmentedMergeAlgorithm: round outside the segment budget");
  }
  const TopKVector& part = parts_[r - 1];
  if (part.empty()) {
    ++passCounts_.passthrough;
    return incoming;
  }
  ++passCounts_.real;
  return mergeTopK(incoming, part, k_);
}

// ---------------------------------------------------------------------------
// LdpAlgorithm
// ---------------------------------------------------------------------------

namespace {

/// Geometric draw with decay alpha in (0, 1): P(g = j) ∝ alpha^j.
Value geometricDraw(Rng& rng, double alpha) {
  const double u = rng.uniform01();
  // log(1-u) in (-inf, 0], log(alpha) < 0: the quotient is >= 0.
  return static_cast<Value>(std::floor(std::log1p(-u) / std::log(alpha)));
}

}  // namespace

LdpAlgorithm::LdpAlgorithm(std::size_t k, double epsilon, Rng rng,
                           Domain domain)
    : k_(k), epsilon_(epsilon), rng_(rng), domain_(domain),
      bound_(ldpNoiseBound(epsilon)) {
  if (k_ == 0) throw ConfigError("LdpAlgorithm: k must be >= 1");
  if (!(epsilon_ > 0.0)) throw ConfigError("LdpAlgorithm: epsilon must be > 0");
}

void LdpAlgorithm::reset(TopKVector localTopK) {
  if (localTopK.size() > k_) {
    throw ConfigError("LdpAlgorithm: local vector larger than k");
  }
  // Perturb once: a two-sided geometric (discrete Laplace) deviate with
  // decay e^-epsilon, truncated to [-bound, bound] and clamped to the
  // public domain.  The node never again consults its real values, so the
  // protocol run is epsilon-LDP per value regardless of ring position.
  const double alpha = std::exp(-epsilon_);
  perturbed_.clear();
  perturbed_.reserve(localTopK.size());
  for (Value v : localTopK) {
    if (!domain_.contains(v)) {
      throw ConfigError("LdpAlgorithm: local value outside domain");
    }
    Value noise = geometricDraw(rng_, alpha) - geometricDraw(rng_, alpha);
    noise = std::clamp(noise, -bound_, bound_);
    perturbed_.push_back(std::clamp(v + noise, domain_.min, domain_.max));
  }
  std::sort(perturbed_.begin(), perturbed_.end(), std::greater<>());
}

TopKVector LdpAlgorithm::step(const TopKVector& incoming, Round /*r*/) {
  ++passCounts_.randomized;
  return mergeTopK(incoming, perturbed_, k_);
}

}  // namespace privtopk::protocol
