#include "protocol/node.hpp"

namespace privtopk::protocol {

std::unique_ptr<LocalAlgorithm> makeLocalAlgorithm(ProtocolKind kind,
                                                   const ProtocolParams& params,
                                                   Rng& rng) {
  params.validate();
  switch (kind) {
    case ProtocolKind::Probabilistic: {
      auto schedule =
          std::make_shared<const ExponentialSchedule>(params.p0, params.d);
      if (params.k == 1) {
        return std::make_unique<RandomizedMaxAlgorithm>(
            std::move(schedule), rng.fork(0x5a17), params.domain);
      }
      return std::make_unique<RandomizedTopKAlgorithm>(
          params.k, std::move(schedule), rng.fork(0x5a17), params.domain,
          params.delta);
    }
    case ProtocolKind::Naive:
    case ProtocolKind::AnonymousNaive:
      return std::make_unique<NaiveAlgorithm>(params.k);
  }
  throw ConfigError("makeLocalAlgorithm: unknown protocol kind");
}

}  // namespace privtopk::protocol
