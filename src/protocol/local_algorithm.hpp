// The local computation module: what one node does with an incoming global
// vector (paper §3.3 Algorithm 1 and §3.4 Algorithm 2, plus the naive
// baseline).
//
// Every algorithm is a small state machine reset per query.  step() takes
// the incoming global top-k vector (sorted descending, exactly k entries)
// and the 1-based round, and returns the outgoing vector.  Implementations
// must preserve two protocol invariants, which the test suite checks as
// properties:
//   1. monotonicity - the outgoing vector elementwise dominates the
//      incoming one (Algorithm 2's delta clamp can dip a tail entry by at
//      most delta, the paper-sanctioned exception);
//   2. soundness - no outgoing value exceeds the true current top-k of
//      (incoming ∪ local values), so randomization can never fabricate a
//      result above the real one.

#pragma once

#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "protocol/schedule.hpp"

namespace privtopk::protocol {

/// Merges `incoming` (size k, sorted desc) with `local` (sorted desc) and
/// returns the k largest, sorted desc.  Exposed for reuse and testing.
[[nodiscard]] TopKVector mergeTopK(const TopKVector& incoming,
                                   const TopKVector& local, std::size_t k);

/// Multiset difference a - b for descending-sorted vectors (the paper's
/// V_i' = G_i'(r) - G_{i-1}(r) step).  Exposed for testing.
[[nodiscard]] TopKVector multisetDifference(const TopKVector& a,
                                            const TopKVector& b);

class LocalAlgorithm {
 public:
  virtual ~LocalAlgorithm() = default;

  /// Per-step outcome tally - the observable side of the randomization
  /// schedule Pr(r) = p0*d^(r-1) (Eq. 2).  Members are plain integers so
  /// the token hot path pays nothing; execution engines flush the totals
  /// into the global metrics registry once per query (see
  /// docs/OBSERVABILITY.md).
  struct PassCounts {
    std::uint64_t randomized = 0;   // injected bounded noise
    std::uint64_t real = 0;         // merged/inserted real local values
    std::uint64_t passthrough = 0;  // forwarded the vector untouched
  };

  /// Starts a new query with this node's local top-k vector (sorted
  /// descending, at most k values - fewer when the node has fewer rows).
  virtual void reset(TopKVector localTopK) = 0;

  /// Processes the incoming global vector for round `r`, returning the
  /// outgoing vector.
  [[nodiscard]] virtual TopKVector step(const TopKVector& incoming,
                                        Round r) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Totals accumulated since construction (reset() does not clear them:
  /// engines create one algorithm per query and flush at completion).
  [[nodiscard]] const PassCounts& passCounts() const { return passCounts_; }

 protected:
  PassCounts passCounts_;
};

/// Algorithm 1: randomized max selection (k = 1 specialization, kept
/// separate because it is the form the paper analyzes in §4).
class RandomizedMaxAlgorithm final : public LocalAlgorithm {
 public:
  /// `schedule` supplies Pr(r); `rng` drives the randomized branch.
  RandomizedMaxAlgorithm(std::shared_ptr<const RandomizationSchedule> schedule,
                         Rng rng, Domain domain);

  void reset(TopKVector localTopK) override;
  [[nodiscard]] TopKVector step(const TopKVector& incoming, Round r) override;
  [[nodiscard]] std::string name() const override { return "randomized-max"; }

 private:
  std::shared_ptr<const RandomizationSchedule> schedule_;
  Rng rng_;
  Domain domain_;
  Value value_;  // this node's local max
};

/// Algorithm 2: randomized general top-k selection.
class RandomizedTopKAlgorithm final : public LocalAlgorithm {
 public:
  RandomizedTopKAlgorithm(std::size_t k,
                          std::shared_ptr<const RandomizationSchedule> schedule,
                          Rng rng, Domain domain, Value delta = 1);

  void reset(TopKVector localTopK) override;
  [[nodiscard]] TopKVector step(const TopKVector& incoming, Round r) override;
  [[nodiscard]] std::string name() const override { return "randomized-topk"; }

  /// True once the node has inserted its real values ("a node only does
  /// this once" - see DESIGN.md interpretation notes).
  [[nodiscard]] bool hasInserted() const { return inserted_; }

 private:
  std::size_t k_;
  std::shared_ptr<const RandomizationSchedule> schedule_;
  Rng rng_;
  Domain domain_;
  Value delta_;
  TopKVector local_;
  bool inserted_ = false;
};

/// The deterministic baseline: always merge and return the real current
/// top-k (one round suffices).
class NaiveAlgorithm final : public LocalAlgorithm {
 public:
  explicit NaiveAlgorithm(std::size_t k) : k_(k) {}

  void reset(TopKVector localTopK) override { local_ = std::move(localTopK); }
  [[nodiscard]] TopKVector step(const TopKVector& incoming, Round) override {
    ++passCounts_.real;
    return mergeTopK(incoming, local_, k_);
  }
  [[nodiscard]] std::string name() const override { return "naive"; }

 private:
  std::size_t k_;
  TopKVector local_;
};

}  // namespace privtopk::protocol
