// Execution-trace persistence: record protocol runs to a file and replay
// them through the privacy analyzers offline (the `privtopk trace` CLI).
//
// Format: "PTRC" magic, format version, then a varint-counted sequence of
// traces, each self-delimiting.  All integers little-endian via the common
// serialization layer; decoding is bounds-checked and rejects unknown
// versions, so archived traces from hostile sources cannot corrupt the
// analyzer.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/serialization.hpp"
#include "protocol/trace.hpp"

namespace privtopk::protocol {

/// Serializes one trace.
void encodeTrace(const ExecutionTrace& trace, ByteWriter& w);
[[nodiscard]] ExecutionTrace decodeTrace(ByteReader& r);

/// Writes a trace archive (magic + version + count + traces).
[[nodiscard]] Bytes encodeTraceArchive(const std::vector<ExecutionTrace>& traces);
[[nodiscard]] std::vector<ExecutionTrace> decodeTraceArchive(
    std::span<const std::uint8_t> bytes);

/// File helpers; throw Error on I/O failure.
void saveTraceArchive(const std::string& path,
                      const std::vector<ExecutionTrace>& traces);
[[nodiscard]] std::vector<ExecutionTrace> loadTraceArchive(
    const std::string& path);

/// Replays a recorded trace into the structured event tracer
/// (obs::EventTracer) as one query span containing a ring_step event per
/// step.  No-op while the tracer is disabled.  This is how the offline
/// privacy path shares the live service path's JSON-lines stream.
void emitTraceEvents(const ExecutionTrace& trace, std::uint64_t queryId);

}  // namespace privtopk::protocol
