#include "protocol/malicious.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "protocol/core.hpp"
#include "protocol/runner.hpp"
#include "sim/ring.hpp"

namespace privtopk::protocol {

const char* toString(MaliciousBehavior behavior) {
  switch (behavior) {
    case MaliciousBehavior::Honest: return "honest";
    case MaliciousBehavior::SpoofInflate: return "spoof-inflate";
    case MaliciousBehavior::HideValues: return "hide-values";
    case MaliciousBehavior::Suppress: return "suppress";
    case MaliciousBehavior::Deflate: return "deflate";
  }
  return "?";
}

namespace {

MaliciousBehavior behaviorOf(const MaliciousRunSpec& spec, NodeId node) {
  const auto it = spec.behaviors.find(node);
  return it == spec.behaviors.end() ? MaliciousBehavior::Honest : it->second;
}

std::size_t spoofLimit(const MaliciousRunSpec& spec) {
  return std::max<std::size_t>(1, spec.spoofCount);
}

/// Local top-k initialization, possibly distorted by the behavior.
TopKVector initialVector(const std::vector<Value>& values,
                         const MaliciousRunSpec& spec,
                         MaliciousBehavior behavior, Rng& rng) {
  const std::size_t k = spec.params.k;
  const Domain& domain = spec.params.domain;

  TopKVector v;
  switch (behavior) {
    case MaliciousBehavior::HideValues:
      return {};  // enters with an empty dataset
    case MaliciousBehavior::SpoofInflate: {
      // Fabricated near-maximum values plus enough real ones to fill k.
      for (std::size_t i = 0; i < std::min(spoofLimit(spec), k); ++i) {
        const Value lo = domain.max - std::max<Value>(1, domain.size() / 100);
        v.push_back(rng.uniformInt(std::max(domain.min, lo), domain.max));
      }
      TopKVector real = values;
      std::sort(real.begin(), real.end(), std::greater<>());
      for (Value rv : real) {
        if (v.size() >= k) break;
        v.push_back(rv);
      }
      std::sort(v.begin(), v.end(), std::greater<>());
      return v;
    }
    default: {
      v = values;
      const std::size_t take = std::min(k, v.size());
      std::partial_sort(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(take),
                        v.end(), std::greater<>());
      v.resize(take);
      return v;
    }
  }
}

}  // namespace

MaliciousRunResult runWithAdversaries(
    const std::vector<std::vector<Value>>& localValues,
    const MaliciousRunSpec& spec, Rng& rng) {
  spec.params.validate();
  const std::size_t n = localValues.size();
  if (n < 3) throw ConfigError("runWithAdversaries: need n >= 3 nodes");

  // Build per-node algorithms; misbehaving initialization happens here.
  std::vector<std::unique_ptr<LocalAlgorithm>> algorithms;
  std::vector<MaliciousBehavior> behaviors(n);
  for (std::size_t i = 0; i < n; ++i) {
    behaviors[i] = behaviorOf(spec, static_cast<NodeId>(i));
    const TopKVector local =
        initialVector(localValues[i], spec, behaviors[i], rng);
    algorithms.push_back(core::makeLocalAlgorithm(ProtocolKind::Probabilistic,
                                                  spec.params, rng));
    algorithms.back()->reset(local);
  }

  sim::RingTopology ring = sim::RingTopology::random(n, rng);
  const Round rounds = spec.params.effectiveRounds();

  TopKVector global(spec.params.k, spec.params.domain.min);
  for (Round r = 1; r <= rounds; ++r) {
    for (std::size_t pos = 0; pos < n; ++pos) {
      const NodeId id = ring.at(pos);
      switch (behaviors[id]) {
        case MaliciousBehavior::Suppress:
          break;  // forwards `global` unchanged
        case MaliciousBehavior::Deflate:
          global.assign(spec.params.k, spec.params.domain.min);
          break;
        default:
          global = algorithms[id]->step(global, r);
          break;
      }
    }
  }

  MaliciousRunResult result;
  result.published = global;

  // Ground truth over honest nodes' REAL data (hiders/suppressors excluded
  // because their data never legitimately entered).
  std::vector<Value> honestPool;
  for (std::size_t i = 0; i < n; ++i) {
    if (behaviors[i] == MaliciousBehavior::Honest) {
      honestPool.insert(honestPool.end(), localValues[i].begin(),
                        localValues[i].end());
    }
  }
  const std::size_t take = std::min(spec.params.k, honestPool.size());
  std::partial_sort(honestPool.begin(),
                    honestPool.begin() + static_cast<std::ptrdiff_t>(take),
                    honestPool.end(), std::greater<>());
  honestPool.resize(take);
  result.honestTruth = honestPool;

  result.honestPrecision =
      static_cast<double>(multisetIntersectionSize(
          result.published, result.honestTruth)) /
      static_cast<double>(spec.params.k);

  // Fabrications: published values no honest node holds.
  std::vector<Value> allHonest;
  for (std::size_t i = 0; i < n; ++i) {
    if (behaviors[i] == MaliciousBehavior::Honest) {
      allHonest.insert(allHonest.end(), localValues[i].begin(),
                       localValues[i].end());
    }
  }
  const std::size_t genuine =
      multisetIntersectionSize(result.published, allHonest);
  result.fabricatedFraction =
      1.0 - static_cast<double>(genuine) / static_cast<double>(spec.params.k);
  return result;
}

}  // namespace privtopk::protocol
