// Decentralized secure sum on the ring (classic additive masking, under
// the same semi-honest model as the top-k protocol).
//
// The starting node adds a uniformly random mask to each counter before
// sending; every node adds its private addends as the token passes;
// arithmetic is mod 2^64, so each intermediate value every adversary sees
// is uniformly distributed and reveals nothing about any prefix sum.  When
// the token returns, the starting node removes the mask and announces the
// exact totals.  The kNN extension uses this for private label voting.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace privtopk::protocol {

struct SecureSumResult {
  /// Exact totals per counter.
  std::vector<std::int64_t> totals;
  /// Every intermediate token (for tests: each should look uniform).
  std::vector<std::vector<std::uint64_t>> intermediates;
  std::size_t messages = 0;
};

/// Sums `perNodeCounters[i][c]` over nodes i for each counter c.  All nodes
/// must supply the same counter count; requires n >= 3 (with fewer nodes a
/// neighbour pair could reconstruct the remaining party's input trivially).
[[nodiscard]] SecureSumResult secureSum(
    const std::vector<std::vector<std::int64_t>>& perNodeCounters, Rng& rng);

}  // namespace privtopk::protocol
