// ProtocolNode: one participant = a node id + its private local top-k +
// the local computation algorithm.  Used by every execution engine
// (synchronous runner, event-driven simulation, distributed transport).

#pragma once

#include <memory>
#include <utility>

#include "common/types.hpp"
#include "protocol/local_algorithm.hpp"
#include "protocol/params.hpp"

namespace privtopk::protocol {

class ProtocolNode {
 public:
  /// Takes ownership of `algorithm`; `localTopK` is the node's private
  /// input (sorted descending, at most k values).
  ProtocolNode(NodeId id, TopKVector localTopK,
               std::unique_ptr<LocalAlgorithm> algorithm)
      : id_(id), local_(std::move(localTopK)), algorithm_(std::move(algorithm)) {
    algorithm_->reset(local_);
  }

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const TopKVector& localVector() const { return local_; }

  /// Processes the incoming token for round `r`.
  [[nodiscard]] TopKVector onToken(Round r, const TopKVector& incoming) {
    return algorithm_->step(incoming, r);
  }

  /// Restarts the node for a fresh query over the same local data.
  void restart() { algorithm_->reset(local_); }

  /// Step-outcome tallies accumulated by the local algorithm (randomized /
  /// real / passthrough) - flushed to the metrics registry by the engines.
  [[nodiscard]] const LocalAlgorithm::PassCounts& passCounts() const {
    return algorithm_->passCounts();
  }

 private:
  NodeId id_;
  TopKVector local_;
  std::unique_ptr<LocalAlgorithm> algorithm_;
};

/// Builds the local-algorithm instance a ProtocolKind requires.  `rng` is
/// forked so each node owns an independent stream.
[[nodiscard]] std::unique_ptr<LocalAlgorithm> makeLocalAlgorithm(
    ProtocolKind kind, const ProtocolParams& params, Rng& rng);

}  // namespace privtopk::protocol
