// Distributed protocol engine: runs one participant of the ring protocol
// over a net::Transport (in-process queues or real TCP sockets).
//
// Deployment model: the participants agree out-of-band on the query id,
// parameters, ring order and starting node (in practice the initiating
// organization distributes a signed query descriptor).  Each participant
// then constructs a DistributedParticipant and calls run(), which blocks
// until the final result is known.  The protocol logic itself lives in
// core::Participant; this driver only maps its send effects onto the
// transport and its inputs onto received messages.
//
// Failure handling (paper SS3.2: "the ring can be reconstructed ... simply
// by connecting the predecessor and successor of the failed node"): sends
// are repair-aware.  When the transport reports the successor unreachable,
// the sender splices it out of the ring and retries the next node - the
// dead node's data simply never joins.  When repair would shrink the ring
// below core::kMinRingSize the query aborts (TransportError).  A node that
// dies while HOLDING the token loses it; the waiting participants then
// time out and the query must be re-issued (a fail-stop limit the event
// simulator also models).

#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "net/transport.hpp"
#include "protocol/core.hpp"
#include "protocol/params.hpp"

namespace privtopk::protocol {

struct DistributedConfig {
  std::uint64_t queryId = 1;
  ProtocolParams params;
  ProtocolKind kind = ProtocolKind::Probabilistic;
  /// Agreed ring order; the first entry is the starting node.
  std::vector<NodeId> ringOrder;
  /// How long receive() waits before concluding the ring is dead.
  std::chrono::milliseconds receiveTimeout{10'000};
  /// Idle interval after which the last message is retransmitted toward
  /// the successor.  Receivers suppress duplicates (round bookkeeping in
  /// the core), and resending is what surfaces an asynchronously latched
  /// link failure: the reactor transport reports a dead successor on the
  /// send AFTER the failure, so a participant that only ever waited would
  /// never learn its token was dropped.
  std::chrono::milliseconds retransmitAfter{500};
  /// Optional sink recording this participant's view of the execution
  /// (its own steps only - peers' intermediate vectors stay private).
  /// Must outlive the participant.
  ExecutionTrace* trace = nullptr;
  /// Optional distributed-tracing span sink; the wire trace context of
  /// received tokens/announcements is forwarded into the core so this
  /// node extends the cross-node span chain.  Must outlive the
  /// participant.
  obs::TraceSink* spanSink = nullptr;
};

class DistributedParticipant {
 public:
  /// `localTopK` is this participant's private input (sorted descending,
  /// at most k values).  `rng` seeds the node's local algorithm.
  DistributedParticipant(NodeId self, TopKVector localTopK,
                         net::Transport& transport, DistributedConfig config,
                         Rng& rng);

  /// Blocks until the query completes; returns the final top-k.  Throws
  /// TransportError on timeout and ProtocolError on malformed traffic.
  [[nodiscard]] TopKVector run();

  /// The live ring as this participant sees it (shrinks on repair).
  [[nodiscard]] const std::vector<NodeId>& ringOrder() const {
    return core_.ringOrder();
  }

 private:
  [[nodiscard]] net::Message awaitMessage();
  /// Maps the core's send effects onto the transport.
  void perform(const core::Actions& actions);

  /// Sends to the first LIVE successor on the ring, splicing unreachable
  /// peers out (paper SS3.2 repair).  Throws TransportError when repair
  /// shrinks the ring below the privacy floor.
  void sendOnRing(const Bytes& payload);

  net::Transport& transport_;
  DistributedConfig config_;
  core::Participant core_;
  Bytes lastSent_;  // retransmitted after an idle interval
};

/// Convenience multi-threaded harness: runs all n participants of a query
/// on one transport (one thread each) and returns the result every node
/// agreed on.  Used by integration tests and the quickstart example; real
/// deployments run one DistributedParticipant per process instead.
[[nodiscard]] TopKVector runDistributedQuery(
    const std::vector<TopKVector>& localTopK, net::Transport& transport,
    DistributedConfig config, Rng& rng);

}  // namespace privtopk::protocol
