// Distributed protocol engine: runs one participant of the ring protocol
// over a net::Transport (in-process queues or real TCP sockets).
//
// Deployment model: the participants agree out-of-band on the query id,
// parameters, ring order and starting node (in practice the initiating
// organization distributes a signed query descriptor).  Each participant
// then constructs a DistributedParticipant and calls run(), which blocks
// until the final result is known.  The starting node drives the rounds
// and emits the final ResultAnnouncement that circles the ring once.
//
// Failure handling (paper SS3.2: "the ring can be reconstructed ... simply
// by connecting the predecessor and successor of the failed node"): sends
// are repair-aware.  When the transport reports the successor unreachable,
// the sender marks it dead and retries the next node in ring order - the
// dead node's data simply never joins.  A node that dies while HOLDING the
// token loses it; the waiting participants then time out and the query
// must be re-issued (a fail-stop limit the event simulator also models).

#pragma once

#include <chrono>
#include <cstdint>
#include <set>
#include <vector>

#include "net/message.hpp"
#include "net/transport.hpp"
#include "protocol/node.hpp"
#include "protocol/params.hpp"

namespace privtopk::protocol {

struct DistributedConfig {
  std::uint64_t queryId = 1;
  ProtocolParams params;
  ProtocolKind kind = ProtocolKind::Probabilistic;
  /// Agreed ring order; ringOrder[0] is the starting node.
  std::vector<NodeId> ringOrder;
  /// How long receive() waits before concluding the ring is dead.
  std::chrono::milliseconds receiveTimeout{10'000};
};

class DistributedParticipant {
 public:
  /// `node` holds this participant's id and private local top-k.
  DistributedParticipant(ProtocolNode node, net::Transport& transport,
                         DistributedConfig config);

  /// Blocks until the query completes; returns the final top-k.  Throws
  /// TransportError on timeout and ProtocolError on malformed traffic.
  [[nodiscard]] TopKVector run();

  /// Peers discovered dead so far (skipped by repair-aware sends).
  [[nodiscard]] const std::set<NodeId>& deadPeers() const { return dead_; }

 private:
  [[nodiscard]] bool isStart() const;
  [[nodiscard]] TopKVector runAsStart();
  [[nodiscard]] TopKVector runAsFollower();
  [[nodiscard]] net::Message awaitMessage();

  /// Sends to the first LIVE successor on the ring, marking unreachable
  /// peers dead (paper SS3.2 repair).  Throws TransportError when every
  /// other participant is unreachable.
  void sendOnRing(const Bytes& payload);

  ProtocolNode node_;
  net::Transport& transport_;
  DistributedConfig config_;
  std::set<NodeId> dead_;
};

/// Convenience multi-threaded harness: runs all n participants of a query
/// on one transport (one thread each) and returns the result every node
/// agreed on.  Used by integration tests and the quickstart example; real
/// deployments run one DistributedParticipant per process instead.
[[nodiscard]] TopKVector runDistributedQuery(
    const std::vector<TopKVector>& localTopK, net::Transport& transport,
    DistributedConfig config, Rng& rng);

}  // namespace privtopk::protocol
