// Event-driven simulated deployment: the protocol over a virtual network
// with per-link latencies and fail-stop node crashes.
//
// This engine answers the questions the synchronous runner cannot: how
// long does a query take on a WAN (virtual time), and does the protocol
// still terminate correctly when nodes crash mid-query and the ring is
// repaired by connecting the failed node's predecessor and successor
// (§3.2)?  Semantics on failure: a crashed node's values are lost (it can
// no longer participate), so the result is the top-k over the values of
// nodes that stayed alive plus whatever the crashed node already
// contributed - matching a real deployment.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "protocol/core.hpp"
#include "protocol/params.hpp"
#include "protocol/trace.hpp"
#include "sim/event_sim.hpp"
#include "sim/failure.hpp"
#include "sim/ring.hpp"

namespace privtopk::protocol {

struct SimulatedRunResult {
  TopKVector result;
  ExecutionTrace trace;
  /// Virtual milliseconds from query start to the starting node holding
  /// the final result (excludes the dissemination pass).
  sim::SimTime completionTime = 0.0;
  std::size_t messages = 0;
  /// Nodes that crashed during the run.
  std::vector<NodeId> failedNodes;
  /// Set when crashes shrank the ring below core::kMinRingSize: the
  /// survivors abort rather than run a privacy-violating 2-node ring, and
  /// `result` stays empty.
  bool aborted = false;
  std::string abortReason;
};

struct SimulatedRunConfig {
  ProtocolParams params;
  ProtocolKind kind = ProtocolKind::Probabilistic;
  /// Per-link latency model; defaults to 1ms fixed when null.
  const sim::LatencyModel* latency = nullptr;
  /// Fail-stop plan; empty = no failures.
  sim::FailurePlan failures;
  /// Determinism overrides (explicit ring / per-node algorithm seeds).
  core::EngineOverrides overrides;
};

/// Runs one simulated query over `localValues` (per-node raw values).
[[nodiscard]] SimulatedRunResult runSimulatedQuery(
    const std::vector<std::vector<Value>>& localValues,
    const SimulatedRunConfig& config, Rng& rng);

}  // namespace privtopk::protocol
