#include "protocol/group.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace privtopk::protocol {

namespace {

/// Throws unless plan.groups is >= 3 disjoint rings of >= 3 members that
/// together cover 0..n-1 exactly once, with seed shapes matching.
void validatePlan(const GroupPlan& plan, std::size_t n) {
  if (plan.groups.size() < 3) {
    throw ConfigError("GroupPlan: the merge ring needs >= 3 groups");
  }
  std::vector<bool> seen(n, false);
  std::size_t covered = 0;
  for (const auto& group : plan.groups) {
    if (group.size() < 3) {
      throw ConfigError("GroupPlan: groups need at least 3 members");
    }
    for (std::size_t idx : group) {
      if (idx >= n) throw ConfigError("GroupPlan: member index out of range");
      if (seen[idx]) throw ConfigError("GroupPlan: member listed twice");
      seen[idx] = true;
      ++covered;
    }
  }
  if (covered != n) {
    throw ConfigError("GroupPlan: groups must cover every node");
  }
  if (!plan.groupSeeds.empty()) {
    if (plan.groupSeeds.size() != plan.groups.size()) {
      throw ConfigError("GroupPlan: groupSeeds/groups size mismatch");
    }
    for (std::size_t g = 0; g < plan.groups.size(); ++g) {
      if (plan.groupSeeds[g].size() != plan.groups[g].size()) {
        throw ConfigError("GroupPlan: groupSeeds[g] size mismatch");
      }
    }
  }
  if (!plan.mergeSeeds.empty() &&
      plan.mergeSeeds.size() != plan.groups.size()) {
    throw ConfigError("GroupPlan: mergeSeeds size mismatch");
  }
}

std::vector<NodeId> identityRing(std::size_t n) {
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  return order;
}

}  // namespace

GroupLayout makeGroupLayout(const std::vector<NodeId>& nodes,
                            NodeId coordinator, std::size_t groupSize,
                            Rng& rng) {
  if (groupSize < 3) {
    throw ConfigError("makeGroupLayout: groups need at least 3 members");
  }
  const std::size_t n = nodes.size();
  const std::size_t groupCount = n / groupSize;
  if (groupCount < 3) {
    throw ConfigError("makeGroupLayout: need at least 3 groups");
  }
  if (std::find(nodes.begin(), nodes.end(), coordinator) == nodes.end()) {
    throw ConfigError("makeGroupLayout: coordinator not among the nodes");
  }

  std::vector<NodeId> shuffled = nodes;
  rng.shuffle(shuffled);

  GroupLayout layout;
  layout.groups.resize(groupCount);
  for (std::size_t g = 0; g < groupCount; ++g) {
    for (std::size_t idx = g; idx < n; idx += groupCount) {
      layout.groups[g].push_back(shuffled[idx]);
    }
  }
  // The coordinator starts (and delegates for) its own group, which leads
  // the group list so the merge ring begins at the coordinator.
  for (std::size_t g = 0; g < groupCount; ++g) {
    auto& group = layout.groups[g];
    const auto at = std::find(group.begin(), group.end(), coordinator);
    if (at == group.end()) continue;
    std::rotate(group.begin(), at, group.end());
    std::swap(layout.groups[0], layout.groups[g]);
    break;
  }
  layout.mergeRing.reserve(groupCount);
  for (const auto& group : layout.groups) {
    layout.mergeRing.push_back(group.front());
  }
  return layout;
}

GroupedRunResult runGrouped(const std::vector<std::vector<Value>>& localValues,
                            const ProtocolParams& params, std::size_t groupSize,
                            Rng& rng) {
  return runGrouped(localValues, params, ProtocolKind::Probabilistic,
                    groupSize, rng);
}

GroupedRunResult runGrouped(const std::vector<std::vector<Value>>& localValues,
                            const ProtocolParams& params, ProtocolKind kind,
                            std::size_t groupSize, Rng& rng) {
  params.validate();
  if (groupSize < 3) {
    throw ConfigError("runGrouped: groups need at least 3 members");
  }
  const std::size_t n = localValues.size();
  const RingQueryRunner runner(params, kind);

  const std::size_t groupCount = n / groupSize;
  if (groupCount < 3) {
    // Too few groups for a delegate ring; run flat.
    RunResult flat = runner.run(localValues, rng);
    return GroupedRunResult{flat.result, flat.totalMessages,
                            flat.totalMessages, 1};
  }

  // Random partition into groupCount groups (remainder spread round-robin).
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.shuffle(perm);

  GroupedRunResult out;
  out.groups = groupCount;
  std::size_t longestGroupRun = 0;
  std::vector<std::vector<Value>> delegateInputs;
  delegateInputs.reserve(groupCount);

  for (std::size_t g = 0; g < groupCount; ++g) {
    std::vector<std::vector<Value>> members;
    for (std::size_t idx = g; idx < n; idx += groupCount) {
      members.push_back(localValues[perm[idx]]);
    }
    RunResult groupRun = runner.run(members, rng);
    out.totalMessages += groupRun.totalMessages;
    longestGroupRun = std::max(longestGroupRun, groupRun.totalMessages);
    // The group's delegate carries the group top-k into the second level.
    delegateInputs.push_back(groupRun.result);
  }

  RunResult finalRun = runner.run(delegateInputs, rng);
  out.totalMessages += finalRun.totalMessages;
  out.criticalPathMessages = longestGroupRun + finalRun.totalMessages;
  out.result = finalRun.result;
  return out;
}

GroupedSimulatedResult runGroupedSimulated(
    const std::vector<std::vector<Value>>& localValues,
    const ProtocolParams& params, std::size_t groupSize,
    const sim::LatencyModel* latency, Rng& rng) {
  params.validate();
  if (groupSize < 3) {
    throw ConfigError("runGroupedSimulated: groups need at least 3 members");
  }
  const std::size_t n = localValues.size();

  SimulatedRunConfig simCfg;
  simCfg.params = params;
  simCfg.latency = latency;

  GroupedSimulatedResult out;
  // Flat reference on the same data.
  {
    Rng flatRng = rng.fork(0xF1A7);
    const SimulatedRunResult flat =
        runSimulatedQuery(localValues, simCfg, flatRng);
    out.flatCompletionTime = flat.completionTime;
  }

  const std::size_t groupCount = n / groupSize;
  if (groupCount < 3) {
    Rng flatRng = rng.fork(0x0F2A);
    const SimulatedRunResult flat =
        runSimulatedQuery(localValues, simCfg, flatRng);
    out.result = flat.result;
    out.completionTime = flat.completionTime;
    out.groups = 1;
    return out;
  }

  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.shuffle(perm);

  out.groups = groupCount;
  sim::SimTime slowestGroup = 0.0;
  std::vector<std::vector<Value>> delegateInputs;
  delegateInputs.reserve(groupCount);
  for (std::size_t g = 0; g < groupCount; ++g) {
    std::vector<std::vector<Value>> members;
    for (std::size_t idx = g; idx < n; idx += groupCount) {
      members.push_back(localValues[perm[idx]]);
    }
    Rng groupRng = rng.fork(g + 1);
    const SimulatedRunResult groupRun =
        runSimulatedQuery(members, simCfg, groupRng);
    slowestGroup = std::max(slowestGroup, groupRun.completionTime);
    delegateInputs.push_back(groupRun.result);
  }

  Rng delegateRng = rng.fork(0xDE1E);
  const SimulatedRunResult finalRun =
      runSimulatedQuery(delegateInputs, simCfg, delegateRng);
  out.result = finalRun.result;
  out.completionTime = slowestGroup + finalRun.completionTime;
  return out;
}

GroupedRunResult runGroupedWithPlan(
    const std::vector<std::vector<Value>>& localValues,
    const ProtocolParams& params, ProtocolKind kind, const GroupPlan& plan,
    Rng& rng) {
  params.validate();
  validatePlan(plan, localValues.size());
  const RingQueryRunner runner(params, kind);

  GroupedRunResult out;
  out.groups = plan.groups.size();
  std::size_t longestGroupRun = 0;
  std::vector<std::vector<Value>> delegateInputs;
  delegateInputs.reserve(plan.groups.size());

  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    std::vector<std::vector<Value>> members;
    members.reserve(plan.groups[g].size());
    for (std::size_t idx : plan.groups[g]) members.push_back(localValues[idx]);
    core::EngineOverrides overrides;
    overrides.ringOrder = identityRing(members.size());
    if (!plan.groupSeeds.empty()) overrides.nodeSeeds = plan.groupSeeds[g];
    const RunResult groupRun = runner.run(members, rng, overrides);
    out.totalMessages += groupRun.totalMessages;
    longestGroupRun = std::max(longestGroupRun, groupRun.totalMessages);
    delegateInputs.push_back(groupRun.result);
  }

  core::EngineOverrides mergeOverrides;
  mergeOverrides.ringOrder = identityRing(delegateInputs.size());
  mergeOverrides.nodeSeeds = plan.mergeSeeds;
  const RunResult finalRun = runner.run(delegateInputs, rng, mergeOverrides);
  out.totalMessages += finalRun.totalMessages;
  out.criticalPathMessages = longestGroupRun + finalRun.totalMessages;
  out.result = finalRun.result;
  return out;
}

GroupedSimulatedResult runGroupedSimulatedWithPlan(
    const std::vector<std::vector<Value>>& localValues,
    const ProtocolParams& params, ProtocolKind kind, const GroupPlan& plan,
    const sim::LatencyModel* latency, Rng& rng) {
  params.validate();
  validatePlan(plan, localValues.size());

  SimulatedRunConfig simCfg;
  simCfg.params = params;
  simCfg.kind = kind;
  simCfg.latency = latency;

  GroupedSimulatedResult out;
  out.groups = plan.groups.size();
  sim::SimTime slowestGroup = 0.0;
  std::vector<std::vector<Value>> delegateInputs;
  delegateInputs.reserve(plan.groups.size());

  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    std::vector<std::vector<Value>> members;
    members.reserve(plan.groups[g].size());
    for (std::size_t idx : plan.groups[g]) members.push_back(localValues[idx]);
    simCfg.overrides.ringOrder = identityRing(members.size());
    simCfg.overrides.nodeSeeds =
        plan.groupSeeds.empty() ? std::vector<std::uint64_t>{}
                                : plan.groupSeeds[g];
    Rng groupRng = rng.fork(g + 1);
    const SimulatedRunResult groupRun =
        runSimulatedQuery(members, simCfg, groupRng);
    slowestGroup = std::max(slowestGroup, groupRun.completionTime);
    delegateInputs.push_back(groupRun.result);
  }

  simCfg.overrides.ringOrder = identityRing(delegateInputs.size());
  simCfg.overrides.nodeSeeds = plan.mergeSeeds;
  Rng delegateRng = rng.fork(0xDE1E);
  const SimulatedRunResult finalRun =
      runSimulatedQuery(delegateInputs, simCfg, delegateRng);
  out.result = finalRun.result;
  out.completionTime = slowestGroup + finalRun.completionTime;
  return out;
}

}  // namespace privtopk::protocol
