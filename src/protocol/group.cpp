#include "protocol/group.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace privtopk::protocol {

GroupedRunResult runGrouped(const std::vector<std::vector<Value>>& localValues,
                            const ProtocolParams& params, std::size_t groupSize,
                            Rng& rng) {
  params.validate();
  if (groupSize < 3) {
    throw ConfigError("runGrouped: groups need at least 3 members");
  }
  const std::size_t n = localValues.size();
  const RingQueryRunner runner(params, ProtocolKind::Probabilistic);

  const std::size_t groupCount = n / groupSize;
  if (groupCount < 3) {
    // Too few groups for a delegate ring; run flat.
    RunResult flat = runner.run(localValues, rng);
    return GroupedRunResult{flat.result, flat.totalMessages,
                            flat.totalMessages, 1};
  }

  // Random partition into groupCount groups (remainder spread round-robin).
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.shuffle(perm);

  GroupedRunResult out;
  out.groups = groupCount;
  std::size_t longestGroupRun = 0;
  std::vector<std::vector<Value>> delegateInputs;
  delegateInputs.reserve(groupCount);

  for (std::size_t g = 0; g < groupCount; ++g) {
    std::vector<std::vector<Value>> members;
    for (std::size_t idx = g; idx < n; idx += groupCount) {
      members.push_back(localValues[perm[idx]]);
    }
    RunResult groupRun = runner.run(members, rng);
    out.totalMessages += groupRun.totalMessages;
    longestGroupRun = std::max(longestGroupRun, groupRun.totalMessages);
    // The group's delegate carries the group top-k into the second level.
    delegateInputs.push_back(groupRun.result);
  }

  RunResult finalRun = runner.run(delegateInputs, rng);
  out.totalMessages += finalRun.totalMessages;
  out.criticalPathMessages = longestGroupRun + finalRun.totalMessages;
  out.result = finalRun.result;
  return out;
}

GroupedSimulatedResult runGroupedSimulated(
    const std::vector<std::vector<Value>>& localValues,
    const ProtocolParams& params, std::size_t groupSize,
    const sim::LatencyModel* latency, Rng& rng) {
  params.validate();
  if (groupSize < 3) {
    throw ConfigError("runGroupedSimulated: groups need at least 3 members");
  }
  const std::size_t n = localValues.size();

  SimulatedRunConfig simCfg;
  simCfg.params = params;
  simCfg.latency = latency;

  GroupedSimulatedResult out;
  // Flat reference on the same data.
  {
    Rng flatRng = rng.fork(0xF1A7);
    const SimulatedRunResult flat =
        runSimulatedQuery(localValues, simCfg, flatRng);
    out.flatCompletionTime = flat.completionTime;
  }

  const std::size_t groupCount = n / groupSize;
  if (groupCount < 3) {
    Rng flatRng = rng.fork(0x0F2A);
    const SimulatedRunResult flat =
        runSimulatedQuery(localValues, simCfg, flatRng);
    out.result = flat.result;
    out.completionTime = flat.completionTime;
    out.groups = 1;
    return out;
  }

  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.shuffle(perm);

  out.groups = groupCount;
  sim::SimTime slowestGroup = 0.0;
  std::vector<std::vector<Value>> delegateInputs;
  delegateInputs.reserve(groupCount);
  for (std::size_t g = 0; g < groupCount; ++g) {
    std::vector<std::vector<Value>> members;
    for (std::size_t idx = g; idx < n; idx += groupCount) {
      members.push_back(localValues[perm[idx]]);
    }
    Rng groupRng = rng.fork(g + 1);
    const SimulatedRunResult groupRun =
        runSimulatedQuery(members, simCfg, groupRng);
    slowestGroup = std::max(slowestGroup, groupRun.completionTime);
    delegateInputs.push_back(groupRun.result);
  }

  Rng delegateRng = rng.fork(0xDE1E);
  const SimulatedRunResult finalRun =
      runSimulatedQuery(delegateInputs, simCfg, delegateRng);
  out.result = finalRun.result;
  out.completionTime = slowestGroup + finalRun.completionTime;
  return out;
}

}  // namespace privtopk::protocol
