#include "protocol/runner.hpp"

#include <memory>
#include <numeric>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/ring.hpp"

namespace privtopk::protocol {

namespace {

/// Global metric cells, registered once and flushed once per run() so the
/// Monte-Carlo hot loop performs no atomic work per step.
struct RunnerMetrics {
  obs::Counter& queries =
      obs::counter("privtopk.protocol.queries", {{"engine", "runner"}});
  obs::Counter& rounds = obs::counter("privtopk.protocol.rounds_executed",
                                      {{"engine", "runner"}});
  obs::Counter& tokenMessages = obs::counter(
      "privtopk.protocol.token_messages", {{"engine", "runner"}});
  obs::Counter& randomized = obs::counter(
      "privtopk.protocol.randomized_passes", {{"engine", "runner"}});
  obs::Counter& real = obs::counter("privtopk.protocol.real_value_passes",
                                    {{"engine", "runner"}});
  obs::Counter& passthrough = obs::counter(
      "privtopk.protocol.passthrough_passes", {{"engine", "runner"}});
};

RunnerMetrics& runnerMetrics() {
  static RunnerMetrics metrics;
  return metrics;
}

}  // namespace

RingQueryRunner::RingQueryRunner(ProtocolParams params, ProtocolKind kind)
    : params_(std::move(params)), kind_(kind) {
  params_.validate();
}

RunResult RingQueryRunner::run(
    const std::vector<std::vector<Value>>& localValues, Rng& rng) const {
  return run(localValues, rng, core::EngineOverrides{});
}

RunResult RingQueryRunner::run(
    const std::vector<std::vector<Value>>& localValues, Rng& rng,
    const core::EngineOverrides& overrides) const {
  const std::size_t n = localValues.size();
  core::requireRingSize(n, "RingQueryRunner");
  if (!overrides.nodeSeeds.empty() && overrides.nodeSeeds.size() != n) {
    throw ConfigError("RingQueryRunner: nodeSeeds size mismatch");
  }
  if (!overrides.ringOrder.empty() && overrides.ringOrder.size() != n) {
    throw ConfigError("RingQueryRunner: ringOrder size mismatch");
  }

  RunResult out;
  out.rounds = core::roundBudget(kind_, params_);

  // --- Initialization module (§3.2): local top-k + per-node algorithm.
  // Algorithms are built before the ring is drawn so the rng consumption
  // order matches the historical engine exactly.
  std::vector<TopKVector> locals;
  std::vector<std::unique_ptr<LocalAlgorithm>> algorithms;
  locals.reserve(n);
  algorithms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (Value v : localValues[i]) {
      if (!params_.domain.contains(v)) {
        throw ConfigError("RingQueryRunner: value outside the public domain");
      }
    }
    locals.push_back(core::localTopK(localValues[i], params_.k));
    if (overrides.nodeSeeds.empty()) {
      algorithms.push_back(core::makeLocalAlgorithm(kind_, params_, rng));
    } else {
      // Replay the algorithm stream of a node seeded with nodeSeeds[i].
      Rng nodeRng(overrides.nodeSeeds[i]);
      algorithms.push_back(core::makeLocalAlgorithm(kind_, params_, nodeRng));
    }
  }

  // Ring mapping + starting node.  The fixed-start naive baseline uses the
  // identity ring starting at node 0; the other variants randomize both
  // (a random permutation makes position 0 a uniformly random starter).
  const bool fixedStart = (kind_ == ProtocolKind::Naive);
  std::vector<NodeId> order;
  if (!overrides.ringOrder.empty()) {
    order = overrides.ringOrder;
  } else if (fixedStart) {
    order.resize(n);
    std::iota(order.begin(), order.end(), NodeId{0});
  } else {
    order = sim::RingTopology::random(n, rng).order();
  }

  // One core participant per node (ids are 0..n-1), all recording into the
  // shared trace sink.
  std::vector<core::Participant> participants;
  participants.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::ParticipantConfig cfg;
    cfg.self = static_cast<NodeId>(i);
    cfg.ringOrder = order;
    cfg.kind = kind_;
    cfg.params = params_;
    cfg.trace = &out.trace;
    participants.emplace_back(std::move(cfg), std::move(locals[i]),
                              std::move(algorithms[i]));
  }

  // The enabled flag is sampled once per run: a query is all-or-nothing in
  // the trace stream, and the hot loop stays branch-predictable.
  const bool traceEvents = obs::EventTracer::global().enabled();
  const auto traceStep = [&](const core::Participant& p, Round round) {
    if (traceEvents) {
      obs::EventTracer::global().event(
          "event", "ring_step",
          {{"round", round},
           {"position", static_cast<std::int64_t>(p.position())},
           {"node", p.self()}});
    }
  };
  const bool remap = params_.remapEachRound && kind_ == ProtocolKind::Probabilistic;

  // --- Rounds of token passing: shuttle the core's send effects around
  // the ring synchronously until the start node announces the result.
  NodeId holder = order.front();
  core::Actions actions = participants[holder].onStart();
  ++out.tokenMessages;
  traceStep(participants[holder], 1);

  while (actions.sendToken) {
    const NodeId next = participants[holder].successor();
    const net::RoundToken token = *std::move(actions.sendToken);
    holder = next;
    actions = participants[holder].onToken(token.round, token.vector);
    if (actions.roundClosed && !actions.completed && remap) {
      const std::vector<NodeId> mapping =
          core::remapRing(participants[holder].ringOrder(), holder, rng);
      for (auto& p : participants) p.setRingOrder(mapping);
    }
    if (actions.sendToken) {
      ++out.tokenMessages;
      traceStep(participants[holder], actions.sendToken->round);
    }
  }

  out.result = participants[holder].result();
  // Result dissemination: one final pass around the ring (§3.3 "in the
  // termination round all nodes simply pass on the final result").
  out.totalMessages = out.tokenMessages + n;

  // One-shot metric flush (six relaxed RMWs per query).
  RunnerMetrics& metrics = runnerMetrics();
  metrics.queries.inc();
  metrics.rounds.inc(out.rounds);
  metrics.tokenMessages.inc(out.tokenMessages);
  LocalAlgorithm::PassCounts totals;
  for (const core::Participant& p : participants) {
    totals.randomized += p.passCounts().randomized;
    totals.real += p.passCounts().real;
    totals.passthrough += p.passCounts().passthrough;
  }
  metrics.randomized.inc(totals.randomized);
  metrics.real.inc(totals.real);
  metrics.passthrough.inc(totals.passthrough);
  return out;
}

RunResult RingQueryRunner::runBottomK(
    const std::vector<std::vector<Value>>& localValues, Rng& rng) const {
  // Mirror v -> min + max - v turns bottom-k into top-k on the same domain.
  const Value lo = params_.domain.min;
  const Value hi = params_.domain.max;
  std::vector<std::vector<Value>> mirrored(localValues.size());
  for (std::size_t i = 0; i < localValues.size(); ++i) {
    mirrored[i].reserve(localValues[i].size());
    for (Value v : localValues[i]) mirrored[i].push_back(lo + hi - v);
  }
  RunResult res = run(mirrored, rng);
  for (Value& v : res.result) v = lo + hi - v;
  // res.result was descending in mirrored space => ascending after
  // mirroring back, which is the natural order for bottom-k.
  for (auto& step : res.trace.steps) {
    for (Value& v : step.input) v = lo + hi - v;
    for (Value& v : step.output) v = lo + hi - v;
  }
  for (auto& local : res.trace.localVectors) {
    for (Value& v : local) v = lo + hi - v;
  }
  res.trace.result = res.result;
  return res;
}

TopKVector queryTopK(const std::vector<std::vector<Value>>& localValues,
                     std::size_t k, Rng& rng,
                     const ProtocolParams* paramsOverride) {
  ProtocolParams params;
  if (paramsOverride) params = *paramsOverride;
  params.k = k;
  const RingQueryRunner runner(params, ProtocolKind::Probabilistic);
  return runner.run(localValues, rng).result;
}

Value queryMax(const std::vector<std::vector<Value>>& localValues, Rng& rng,
               const ProtocolParams* paramsOverride) {
  return queryTopK(localValues, 1, rng, paramsOverride).front();
}

}  // namespace privtopk::protocol
