#include "protocol/runner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocol/node.hpp"
#include "sim/ring.hpp"

namespace privtopk::protocol {

namespace {

/// Local initialization (§3.4): sort and keep the k largest values.
TopKVector localTopK(const std::vector<Value>& values, std::size_t k) {
  TopKVector v = values;
  const std::size_t take = std::min(k, v.size());
  std::partial_sort(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(take),
                    v.end(), std::greater<>());
  v.resize(take);
  return v;
}

/// Global metric cells, registered once and flushed once per run() so the
/// Monte-Carlo hot loop performs no atomic work per step.
struct RunnerMetrics {
  obs::Counter& queries =
      obs::counter("privtopk.protocol.queries", {{"engine", "runner"}});
  obs::Counter& rounds = obs::counter("privtopk.protocol.rounds_executed",
                                      {{"engine", "runner"}});
  obs::Counter& tokenMessages = obs::counter(
      "privtopk.protocol.token_messages", {{"engine", "runner"}});
  obs::Counter& randomized = obs::counter(
      "privtopk.protocol.randomized_passes", {{"engine", "runner"}});
  obs::Counter& real = obs::counter("privtopk.protocol.real_value_passes",
                                    {{"engine", "runner"}});
  obs::Counter& passthrough = obs::counter(
      "privtopk.protocol.passthrough_passes", {{"engine", "runner"}});
};

RunnerMetrics& runnerMetrics() {
  static RunnerMetrics metrics;
  return metrics;
}

}  // namespace

RingQueryRunner::RingQueryRunner(ProtocolParams params, ProtocolKind kind)
    : params_(std::move(params)), kind_(kind) {
  params_.validate();
}

RunResult RingQueryRunner::run(
    const std::vector<std::vector<Value>>& localValues, Rng& rng) const {
  const std::size_t n = localValues.size();
  if (n < 3) {
    throw ConfigError("RingQueryRunner: the protocol requires n >= 3 nodes");
  }

  // --- Initialization module (§3.2) ---
  std::vector<ProtocolNode> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (Value v : localValues[i]) {
      if (!params_.domain.contains(v)) {
        throw ConfigError("RingQueryRunner: value outside the public domain");
      }
    }
    nodes.emplace_back(static_cast<NodeId>(i),
                       localTopK(localValues[i], params_.k),
                       makeLocalAlgorithm(kind_, params_, rng));
  }

  // Ring mapping + starting node.  The fixed-start naive baseline uses the
  // identity ring starting at node 0; the other variants randomize both
  // (a random permutation makes position 0 a uniformly random starter).
  const bool fixedStart = (kind_ == ProtocolKind::Naive);
  sim::RingTopology ring = fixedStart ? sim::RingTopology::identity(n)
                                      : sim::RingTopology::random(n, rng);

  const Round rounds =
      (kind_ == ProtocolKind::Probabilistic) ? params_.effectiveRounds() : 1;

  RunResult out;
  out.rounds = rounds;
  out.trace.nodeCount = n;
  out.trace.k = params_.k;
  out.trace.rounds = rounds;
  out.trace.initialOrder = ring.order();
  out.trace.localVectors.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.trace.localVectors[i] = nodes[i].localVector();
  }

  // Initial global vector: k copies of the domain minimum (§3.4).
  TopKVector global(params_.k, params_.domain.min);

  // The enabled flag is sampled once per run: a query is all-or-nothing in
  // the trace stream, and the hot loop stays branch-predictable.
  const bool traceEvents = obs::EventTracer::global().enabled();

  // --- Rounds of token passing ---
  for (Round r = 1; r <= rounds; ++r) {
    if (params_.remapEachRound && r > 1 && kind_ == ProtocolKind::Probabilistic) {
      ring = sim::RingTopology::random(n, rng);
      out.trace.steps.reserve(out.trace.steps.size() + n);
    }
    for (std::size_t pos = 0; pos < n; ++pos) {
      const NodeId nodeId = ring.at(pos);
      TopKVector output = nodes[nodeId].onToken(r, global);
      if (traceEvents) {
        obs::EventTracer::global().event(
            "event", "ring_step",
            {{"round", r}, {"position", static_cast<std::int64_t>(pos)},
             {"node", nodeId}});
      }
      out.trace.steps.push_back(TraceStep{r, pos, nodeId, global, output});
      global = std::move(output);
      ++out.tokenMessages;  // token handed to the successor
    }
  }

  out.result = global;
  out.trace.result = global;
  // Result dissemination: one final pass around the ring (§3.3 "in the
  // termination round all nodes simply pass on the final result").
  out.totalMessages = out.tokenMessages + n;

  // One-shot metric flush (six relaxed RMWs per query).
  RunnerMetrics& metrics = runnerMetrics();
  metrics.queries.inc();
  metrics.rounds.inc(rounds);
  metrics.tokenMessages.inc(out.tokenMessages);
  LocalAlgorithm::PassCounts totals;
  for (const ProtocolNode& node : nodes) {
    totals.randomized += node.passCounts().randomized;
    totals.real += node.passCounts().real;
    totals.passthrough += node.passCounts().passthrough;
  }
  metrics.randomized.inc(totals.randomized);
  metrics.real.inc(totals.real);
  metrics.passthrough.inc(totals.passthrough);
  return out;
}

RunResult RingQueryRunner::runBottomK(
    const std::vector<std::vector<Value>>& localValues, Rng& rng) const {
  // Mirror v -> min + max - v turns bottom-k into top-k on the same domain.
  const Value lo = params_.domain.min;
  const Value hi = params_.domain.max;
  std::vector<std::vector<Value>> mirrored(localValues.size());
  for (std::size_t i = 0; i < localValues.size(); ++i) {
    mirrored[i].reserve(localValues[i].size());
    for (Value v : localValues[i]) mirrored[i].push_back(lo + hi - v);
  }
  RunResult res = run(mirrored, rng);
  for (Value& v : res.result) v = lo + hi - v;
  // res.result was descending in mirrored space => ascending after
  // mirroring back, which is the natural order for bottom-k.
  for (auto& step : res.trace.steps) {
    for (Value& v : step.input) v = lo + hi - v;
    for (Value& v : step.output) v = lo + hi - v;
  }
  for (auto& local : res.trace.localVectors) {
    for (Value& v : local) v = lo + hi - v;
  }
  res.trace.result = res.result;
  return res;
}

TopKVector queryTopK(const std::vector<std::vector<Value>>& localValues,
                     std::size_t k, Rng& rng,
                     const ProtocolParams* paramsOverride) {
  ProtocolParams params;
  if (paramsOverride) params = *paramsOverride;
  params.k = k;
  const RingQueryRunner runner(params, ProtocolKind::Probabilistic);
  return runner.run(localValues, rng).result;
}

Value queryMax(const std::vector<std::vector<Value>>& localValues, Rng& rng,
               const ProtocolParams* paramsOverride) {
  return queryTopK(localValues, 1, rng, paramsOverride).front();
}

}  // namespace privtopk::protocol
