#include "protocol/sim_engine.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "protocol/node.hpp"

namespace privtopk::protocol {

namespace {

/// Mutable state shared by the event handlers of one simulated run.
struct SimState {
  sim::EventSimulator simulator;
  sim::RingTopology ring = sim::RingTopology::identity(1);
  std::vector<std::unique_ptr<ProtocolNode>> nodes;
  const sim::LatencyModel* latency = nullptr;
  const sim::FailurePlan* failures = nullptr;
  Rng* rng = nullptr;

  NodeId controller = 0;  // starting node; drives rounds and termination
  Round rounds = 1;
  bool remapEachRound = false;
  SimulatedRunResult out;
  bool done = false;

  void deliver(NodeId target, Round round, TopKVector vec);
  void processAndForward(NodeId node, Round round, const TopKVector& vec);
};

void SimState::processAndForward(NodeId node, Round round,
                                 const TopKVector& vec) {
  TopKVector output = nodes[node]->onToken(round, vec);
  out.trace.steps.push_back(
      TraceStep{round, ring.positionOf(node), node, vec, output});
  const NodeId succ = ring.successor(node);
  ++out.messages;
  const sim::SimTime delay = latency->sample(*rng);
  simulator.scheduleAfter(delay, [this, succ, round,
                                  moved = std::move(output)]() mutable {
    deliver(succ, round, std::move(moved));
  });
}

void SimState::deliver(NodeId target, Round round, TopKVector vec) {
  if (done) return;

  // Fail-stop repair: the sender detects the dead successor and re-routes
  // to the next node, splicing the failed one out (§3.2).
  if (failures->isFailed(target, simulator.now())) {
    const NodeId next = ring.successor(target);
    ring.removeNode(target);
    out.failedNodes.push_back(target);
    if (target == controller) controller = next;
    ++out.messages;  // the re-send
    const sim::SimTime delay = latency->sample(*rng);
    simulator.scheduleAfter(delay,
                            [this, next, round, moved = std::move(vec)]() mutable {
                              deliver(next, round, std::move(moved));
                            });
    return;
  }

  // A token arriving at the controller closes the round it carries.
  if (target == controller) {
    if (round >= rounds) {
      out.result = vec;
      out.trace.result = vec;
      out.completionTime = simulator.now();
      out.messages += ring.size();  // final dissemination pass
      done = true;
      return;
    }
    if (remapEachRound) {
      // §4.3 hardening: fresh random mapping over the LIVE nodes, rotated
      // so the controller keeps position 0 (it still drives the rounds).
      std::vector<NodeId> alive = ring.order();
      rng->shuffle(alive);
      const auto it = std::find(alive.begin(), alive.end(), controller);
      std::rotate(alive.begin(), it, alive.end());
      ring = sim::RingTopology(std::move(alive));
    }
    processAndForward(controller, round + 1, vec);
    return;
  }
  processAndForward(target, round, vec);
}

}  // namespace

SimulatedRunResult runSimulatedQuery(
    const std::vector<std::vector<Value>>& localValues,
    const SimulatedRunConfig& config, Rng& rng) {
  config.params.validate();
  const std::size_t n = localValues.size();
  if (n < 3) throw ConfigError("runSimulatedQuery: need n >= 3 nodes");

  const sim::FixedLatency defaultLatency(1.0);
  SimState state;
  state.latency = config.latency ? config.latency : &defaultLatency;
  state.failures = &config.failures;
  state.rng = &rng;
  state.remapEachRound = config.params.remapEachRound &&
                         config.kind == ProtocolKind::Probabilistic;
  state.rounds = (config.kind == ProtocolKind::Probabilistic)
                     ? config.params.effectiveRounds()
                     : 1;

  state.nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    TopKVector local = localValues[i];
    const std::size_t take = std::min(config.params.k, local.size());
    std::partial_sort(local.begin(),
                      local.begin() + static_cast<std::ptrdiff_t>(take),
                      local.end(), std::greater<>());
    local.resize(take);
    state.nodes.push_back(std::make_unique<ProtocolNode>(
        static_cast<NodeId>(i), std::move(local),
        makeLocalAlgorithm(config.kind, config.params, rng)));
  }

  state.ring = (config.kind == ProtocolKind::Naive)
                   ? sim::RingTopology::identity(n)
                   : sim::RingTopology::random(n, rng);
  state.controller = state.ring.order().front();

  state.out.trace.nodeCount = n;
  state.out.trace.k = config.params.k;
  state.out.trace.rounds = state.rounds;
  state.out.trace.initialOrder = state.ring.order();
  state.out.trace.localVectors.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    state.out.trace.localVectors[i] = state.nodes[i]->localVector();
  }

  // Kickoff: the first LIVE node in ring order becomes the controller and
  // processes round 1 at virtual time zero.
  TopKVector initial(config.params.k, config.params.domain.min);
  state.simulator.scheduleAt(0.0, [&state, initial] {
    while (state.failures->isFailed(state.controller, 0.0)) {
      const NodeId next = state.ring.successor(state.controller);
      state.ring.removeNode(state.controller);
      state.out.failedNodes.push_back(state.controller);
      state.controller = next;
    }
    state.processAndForward(state.controller, 1, initial);
  });
  state.simulator.run();

  if (!state.done) {
    throw Error("runSimulatedQuery: simulation drained without terminating");
  }
  return std::move(state.out);
}

}  // namespace privtopk::protocol
