#include "protocol/sim_engine.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace privtopk::protocol {

namespace {

/// Mutable state shared by the event handlers of one simulated run.  The
/// protocol itself lives in the core::Participant instances; this driver
/// only routes their send effects through the virtual network.
struct SimState {
  sim::EventSimulator simulator;
  std::vector<std::unique_ptr<core::Participant>> participants;  // by NodeId
  std::vector<bool> crashed;
  std::vector<NodeId> order;  // canonical live ring (mirrors participants')
  const sim::LatencyModel* latency = nullptr;
  const sim::FailurePlan* failures = nullptr;
  Rng* rng = nullptr;

  bool remapEachRound = false;
  SimulatedRunResult out;
  bool done = false;

  void deliver(NodeId target, Round round, TopKVector vec);
  void applyEffects(NodeId node, core::Actions actions);
  /// Splices `dead` out of every live participant's ring (and the
  /// canonical order).  Returns false when the survivors fell below the
  /// privacy floor, in which case the run is aborted.
  bool splice(NodeId dead);
};

bool SimState::splice(NodeId dead) {
  core::repairRing(order, dead);
  crashed[dead] = true;
  out.failedNodes.push_back(dead);
  for (std::size_t i = 0; i < participants.size(); ++i) {
    if (crashed[i]) continue;
    (void)participants[i]->onPeerDead(dead);
  }
  if (!core::meetsPrivacyFloor(order.size())) {
    out.aborted = true;
    out.abortReason = "ring shrank below the privacy floor after repair";
    out.completionTime = simulator.now();
    done = true;
    return false;
  }
  return true;
}

void SimState::applyEffects(NodeId node, core::Actions actions) {
  if (actions.roundClosed && !actions.completed && remapEachRound) {
    // §4.3 hardening: fresh random mapping over the LIVE nodes, rotated
    // so the controller keeps position 0 (it still drives the rounds).
    order = core::remapRing(order, node, *rng);
    for (std::size_t i = 0; i < participants.size(); ++i) {
      if (!crashed[i]) participants[i]->setRingOrder(order);
    }
  }
  if (actions.sendResult) {
    out.result = actions.sendResult->result;
    out.completionTime = simulator.now();
    out.messages += order.size();  // final dissemination pass
    done = true;
    return;
  }
  if (actions.sendToken) {
    const NodeId succ = participants[node]->successor();
    ++out.messages;
    const sim::SimTime delay = latency->sample(*rng);
    simulator.scheduleAfter(
        delay, [this, succ, round = actions.sendToken->round,
                moved = std::move(actions.sendToken->vector)]() mutable {
          deliver(succ, round, std::move(moved));
        });
  }
}

void SimState::deliver(NodeId target, Round round, TopKVector vec) {
  if (done) return;

  // Fail-stop repair: the sender detects the dead successor and re-routes
  // to the next node, splicing the failed one out (§3.2).
  if (failures->isFailed(target, simulator.now())) {
    const NodeId next = core::ringSuccessor(order, target);
    if (!splice(target)) return;
    ++out.messages;  // the re-send
    const sim::SimTime delay = latency->sample(*rng);
    simulator.scheduleAfter(delay,
                            [this, next, round, moved = std::move(vec)]() mutable {
                              deliver(next, round, std::move(moved));
                            });
    return;
  }
  applyEffects(target, participants[target]->onToken(round, vec));
}

}  // namespace

SimulatedRunResult runSimulatedQuery(
    const std::vector<std::vector<Value>>& localValues,
    const SimulatedRunConfig& config, Rng& rng) {
  config.params.validate();
  const std::size_t n = localValues.size();
  core::requireRingSize(n, "runSimulatedQuery");
  if (!config.overrides.nodeSeeds.empty() &&
      config.overrides.nodeSeeds.size() != n) {
    throw ConfigError("runSimulatedQuery: nodeSeeds size mismatch");
  }
  if (!config.overrides.ringOrder.empty() &&
      config.overrides.ringOrder.size() != n) {
    throw ConfigError("runSimulatedQuery: ringOrder size mismatch");
  }

  const sim::FixedLatency defaultLatency(1.0);
  SimState state;
  state.latency = config.latency ? config.latency : &defaultLatency;
  state.failures = &config.failures;
  state.rng = &rng;
  state.remapEachRound = config.params.remapEachRound &&
                         config.kind == ProtocolKind::Probabilistic;
  state.crashed.assign(n, false);

  // Per-node algorithms first, ring second: same rng consumption order as
  // the synchronous runner.
  std::vector<std::unique_ptr<LocalAlgorithm>> algorithms;
  algorithms.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (config.overrides.nodeSeeds.empty()) {
      algorithms.push_back(
          core::makeLocalAlgorithm(config.kind, config.params, rng));
    } else {
      Rng nodeRng(config.overrides.nodeSeeds[i]);
      algorithms.push_back(
          core::makeLocalAlgorithm(config.kind, config.params, nodeRng));
    }
  }
  if (!config.overrides.ringOrder.empty()) {
    state.order = config.overrides.ringOrder;
  } else if (config.kind == ProtocolKind::Naive) {
    state.order = sim::RingTopology::identity(n).order();
  } else {
    state.order = sim::RingTopology::random(n, rng).order();
  }

  state.participants.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::ParticipantConfig cfg;
    cfg.self = static_cast<NodeId>(i);
    cfg.ringOrder = state.order;
    cfg.kind = config.kind;
    cfg.params = config.params;
    cfg.trace = &state.out.trace;
    state.participants.push_back(std::make_unique<core::Participant>(
        std::move(cfg), core::localTopK(localValues[i], config.params.k),
        std::move(algorithms[i])));
  }

  // Kickoff: the first LIVE node in ring order becomes the controller and
  // processes round 1 at virtual time zero.
  state.simulator.scheduleAt(0.0, [&state] {
    while (state.failures->isFailed(state.order.front(), 0.0)) {
      if (!state.splice(state.order.front())) return;
    }
    const NodeId start = state.order.front();
    state.applyEffects(start, state.participants[start]->onStart());
  });
  state.simulator.run();

  if (!state.done) {
    throw Error("runSimulatedQuery: simulation drained without terminating");
  }
  return std::move(state.out);
}

}  // namespace privtopk::protocol
