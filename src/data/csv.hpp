// CSV import/export for Table, so examples can run on files a user edits.
//
// Dialect: comma separator, double-quote quoting with "" escapes, first row
// is the header.  Types are taken from the schema passed by the caller
// (loadCsv) or from the table (saveCsv); no type inference.

#pragma once

#include <iosfwd>
#include <string>

#include "data/table.hpp"

namespace privtopk::data {

/// Parses CSV from a stream into a table with the given schema.  The header
/// must name exactly the schema's columns (any order); values are converted
/// per the schema and a SchemaError is thrown on malformed cells.
[[nodiscard]] Table loadCsv(std::istream& in, const Schema& schema);

/// Loads from a file path.  Throws Error when the file cannot be opened.
[[nodiscard]] Table loadCsvFile(const std::string& path, const Schema& schema);

/// Writes a table as CSV (header + rows).
void saveCsv(std::ostream& out, const Table& table);
void saveCsvFile(const std::string& path, const Table& table);

}  // namespace privtopk::data
