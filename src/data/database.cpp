#include "data/database.hpp"

#include <algorithm>

namespace privtopk::data {

void PrivateDatabase::addTable(const std::string& tableName, Table table) {
  const auto [it, inserted] = tables_.emplace(tableName, std::move(table));
  (void)it;
  if (!inserted) {
    throw SchemaError("PrivateDatabase: table '" + tableName +
                      "' already exists");
  }
}

bool PrivateDatabase::hasTable(const std::string& tableName) const {
  return tables_.contains(tableName);
}

const Table& PrivateDatabase::table(const std::string& tableName) const {
  const auto it = tables_.find(tableName);
  if (it == tables_.end()) {
    throw SchemaError("PrivateDatabase: no table '" + tableName + "'");
  }
  return it->second;
}

Table& PrivateDatabase::table(const std::string& tableName) {
  const auto it = tables_.find(tableName);
  if (it == tables_.end()) {
    throw SchemaError("PrivateDatabase: no table '" + tableName + "'");
  }
  return it->second;
}

std::vector<std::string> PrivateDatabase::tableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

std::vector<Value> PrivateDatabase::extract(
    const std::string& tableName, const std::string& attribute,
    const RowPredicate& predicate) const {
  const Table& t = table(tableName);
  const std::vector<Value>& column = t.intColumn(attribute);
  if (!predicate) return column;
  std::vector<Value> values;
  values.reserve(column.size());
  for (std::size_t row = 0; row < column.size(); ++row) {
    if (predicate(t, row)) values.push_back(column[row]);
  }
  return values;
}

TopKVector PrivateDatabase::localTopK(const std::string& tableName,
                                      const std::string& attribute,
                                      std::size_t k,
                                      const RowPredicate& predicate) const {
  std::vector<Value> values = extract(tableName, attribute, predicate);
  const std::size_t take = std::min(k, values.size());
  std::partial_sort(values.begin(),
                    values.begin() + static_cast<std::ptrdiff_t>(take),
                    values.end(), std::greater<>());
  values.resize(take);
  return values;
}

TopKVector PrivateDatabase::localBottomK(const std::string& tableName,
                                         const std::string& attribute,
                                         std::size_t k,
                                         const RowPredicate& predicate) const {
  std::vector<Value> values = extract(tableName, attribute, predicate);
  const std::size_t take = std::min(k, values.size());
  std::partial_sort(values.begin(),
                    values.begin() + static_cast<std::ptrdiff_t>(take),
                    values.end());
  values.resize(take);
  return values;
}

std::optional<Value> PrivateDatabase::localMax(
    const std::string& tableName, const std::string& attribute,
    const RowPredicate& predicate) const {
  const TopKVector top = localTopK(tableName, attribute, 1, predicate);
  if (top.empty()) return std::nullopt;
  return top.front();
}

std::optional<Value> PrivateDatabase::localMin(
    const std::string& tableName, const std::string& attribute,
    const RowPredicate& predicate) const {
  const TopKVector bottom = localBottomK(tableName, attribute, 1, predicate);
  if (bottom.empty()) return std::nullopt;
  return bottom.front();
}

}  // namespace privtopk::data
