// PrivateDatabase: one participant's local data store.
//
// Each node owns a PrivateDatabase holding one or more tables.  The only
// thing the protocol ever extracts from it is the *local top-k vector* of a
// named integer attribute (optionally filtered by a predicate) - this is
// the paper's initialization step where "each node first sorts its values
// and takes the local set of topk values ... to participate in the
// protocol".  Nothing else leaves the database object.

#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "data/table.hpp"

namespace privtopk::data {

/// Optional row filter applied before extracting attribute values; receives
/// the table and a row index.
using RowPredicate = std::function<bool(const Table&, std::size_t)>;

class PrivateDatabase {
 public:
  explicit PrivateDatabase(std::string ownerName = "anonymous")
      : ownerName_(std::move(ownerName)) {}

  [[nodiscard]] const std::string& ownerName() const { return ownerName_; }

  /// Adds a table under `tableName`; throws SchemaError if the name exists.
  void addTable(const std::string& tableName, Table table);

  [[nodiscard]] bool hasTable(const std::string& tableName) const;
  [[nodiscard]] const Table& table(const std::string& tableName) const;
  [[nodiscard]] Table& table(const std::string& tableName);
  [[nodiscard]] std::vector<std::string> tableNames() const;

  /// Local top-k: the k largest values of `attribute` in `tableName`
  /// (all values if fewer than k rows), sorted descending.  Duplicates kept
  /// (the global vector is a multiset).  `predicate`, when given, restricts
  /// which rows participate.
  [[nodiscard]] TopKVector localTopK(const std::string& tableName,
                                     const std::string& attribute,
                                     std::size_t k,
                                     const RowPredicate& predicate = {}) const;

  /// Local bottom-k (k smallest ascending); the min/k-min query dual used
  /// by the kNN extension where smaller distance is better.
  [[nodiscard]] TopKVector localBottomK(
      const std::string& tableName, const std::string& attribute,
      std::size_t k, const RowPredicate& predicate = {}) const;

  /// Local max/min (top/bottom 1); nullopt when no rows qualify.
  [[nodiscard]] std::optional<Value> localMax(
      const std::string& tableName, const std::string& attribute,
      const RowPredicate& predicate = {}) const;
  [[nodiscard]] std::optional<Value> localMin(
      const std::string& tableName, const std::string& attribute,
      const RowPredicate& predicate = {}) const;

 private:
  [[nodiscard]] std::vector<Value> extract(const std::string& tableName,
                                           const std::string& attribute,
                                           const RowPredicate& predicate) const;

  std::string ownerName_;
  std::map<std::string, Table> tables_;
};

}  // namespace privtopk::data
