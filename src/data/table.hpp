// A small typed, columnar in-memory table: the storage layer of a private
// database.  Columns are Int (attribute values), Real, or Text.  The paper
// assumes schemas are matched across parties, so Table carries an explicit
// schema that PrivateDatabase checks at query time.

#pragma once

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace privtopk::data {

enum class ColumnType { Int, Real, Text };

[[nodiscard]] std::string toString(ColumnType t);

/// One cell of a row.
using Cell = std::variant<Value, double, std::string>;

/// Column descriptor.
struct ColumnSpec {
  std::string name;
  ColumnType type;

  friend bool operator==(const ColumnSpec&, const ColumnSpec&) = default;
};

/// Table schema: ordered column specs with unique names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnSpec> columns);

  [[nodiscard]] std::size_t columnCount() const { return columns_.size(); }
  [[nodiscard]] const ColumnSpec& column(std::size_t i) const {
    return columns_.at(i);
  }
  [[nodiscard]] const std::vector<ColumnSpec>& columns() const {
    return columns_;
  }

  /// Index of the named column; throws SchemaError if absent.
  [[nodiscard]] std::size_t indexOf(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<ColumnSpec> columns_;
};

/// Columnar table.  Rows are appended; cells are stored per column.
class Table {
 public:
  explicit Table(Schema schema);

  [[nodiscard]] const Schema& schema() const { return schema_; }
  [[nodiscard]] std::size_t rowCount() const { return rowCount_; }

  /// Appends a row; the cell count and types must match the schema.
  void appendRow(const std::vector<Cell>& row);

  /// Typed column accessors; throw SchemaError on name or type mismatch.
  [[nodiscard]] const std::vector<Value>& intColumn(
      const std::string& name) const;
  [[nodiscard]] const std::vector<double>& realColumn(
      const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& textColumn(
      const std::string& name) const;

  /// Cell access by (row, column index).
  [[nodiscard]] Cell at(std::size_t row, std::size_t col) const;

 private:
  using ColumnData = std::variant<std::vector<Value>, std::vector<double>,
                                  std::vector<std::string>>;

  Schema schema_;
  std::vector<ColumnData> columns_;
  std::size_t rowCount_ = 0;
};

}  // namespace privtopk::data
