#include "data/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace privtopk::data {

namespace {

/// Splits one CSV record honoring quotes; consumes additional physical
/// lines when a quoted field contains newlines.
std::vector<std::string> parseRecord(std::istream& in, bool& gotRecord) {
  std::vector<std::string> fields;
  std::string field;
  bool inQuotes = false;
  bool any = false;
  int c;
  while ((c = in.get()) != EOF) {
    any = true;
    const char ch = static_cast<char>(c);
    if (inQuotes) {
      if (ch == '"') {
        if (in.peek() == '"') {
          field.push_back('"');
          in.get();
        } else {
          inQuotes = false;
        }
      } else {
        field.push_back(ch);
      }
    } else if (ch == '"') {
      inQuotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      break;
    } else if (ch == '\r') {
      // swallow; \r\n handled by the \n branch next iteration
    } else {
      field.push_back(ch);
    }
  }
  gotRecord = any;
  if (any) fields.push_back(std::move(field));
  return fields;
}

Cell parseCell(const std::string& raw, ColumnType type,
               const std::string& columnName) {
  switch (type) {
    case ColumnType::Int: {
      Value v = 0;
      const auto [ptr, ec] =
          std::from_chars(raw.data(), raw.data() + raw.size(), v);
      if (ec != std::errc() || ptr != raw.data() + raw.size()) {
        throw SchemaError("loadCsv: bad int in column '" + columnName + "': '" +
                          raw + "'");
      }
      return Cell{v};
    }
    case ColumnType::Real: {
      try {
        std::size_t pos = 0;
        const double v = std::stod(raw, &pos);
        if (pos != raw.size()) throw std::invalid_argument(raw);
        return Cell{v};
      } catch (const std::exception&) {
        throw SchemaError("loadCsv: bad real in column '" + columnName +
                          "': '" + raw + "'");
      }
    }
    case ColumnType::Text:
      return Cell{raw};
  }
  throw SchemaError("loadCsv: bad column type");
}

std::string escapeCsv(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

}  // namespace

Table loadCsv(std::istream& in, const Schema& schema) {
  bool gotRecord = false;
  const std::vector<std::string> header = parseRecord(in, gotRecord);
  if (!gotRecord) throw SchemaError("loadCsv: empty input");
  if (header.size() != schema.columnCount()) {
    throw SchemaError("loadCsv: header has " + std::to_string(header.size()) +
                      " columns, schema has " +
                      std::to_string(schema.columnCount()));
  }
  // Map file column order -> schema order.
  std::vector<std::size_t> schemaIndex;
  schemaIndex.reserve(header.size());
  for (const auto& name : header) schemaIndex.push_back(schema.indexOf(name));

  Table table{schema};
  while (true) {
    const std::vector<std::string> record = parseRecord(in, gotRecord);
    if (!gotRecord) break;
    if (record.size() == 1 && record[0].empty()) continue;  // blank line
    if (record.size() != header.size()) {
      throw SchemaError("loadCsv: row has " + std::to_string(record.size()) +
                        " fields, expected " + std::to_string(header.size()));
    }
    std::vector<Cell> row(schema.columnCount(), Cell{Value{0}});
    for (std::size_t i = 0; i < record.size(); ++i) {
      const std::size_t col = schemaIndex[i];
      row[col] = parseCell(record[i], schema.column(col).type,
                           schema.column(col).name);
    }
    table.appendRow(row);
  }
  return table;
}

Table loadCsvFile(const std::string& path, const Schema& schema) {
  std::ifstream in(path);
  if (!in) throw Error("loadCsvFile: cannot open '" + path + "'");
  return loadCsv(in, schema);
}

void saveCsv(std::ostream& out, const Table& table) {
  const Schema& schema = table.schema();
  for (std::size_t i = 0; i < schema.columnCount(); ++i) {
    if (i != 0) out << ',';
    out << escapeCsv(schema.column(i).name);
  }
  out << '\n';
  for (std::size_t row = 0; row < table.rowCount(); ++row) {
    for (std::size_t col = 0; col < schema.columnCount(); ++col) {
      if (col != 0) out << ',';
      const Cell cell = table.at(row, col);
      if (const auto* v = std::get_if<Value>(&cell)) {
        out << *v;
      } else if (const auto* d = std::get_if<double>(&cell)) {
        out << *d;
      } else {
        out << escapeCsv(std::get<std::string>(cell));
      }
    }
    out << '\n';
  }
}

void saveCsvFile(const std::string& path, const Table& table) {
  std::ofstream out(path);
  if (!out) throw Error("saveCsvFile: cannot open '" + path + "'");
  saveCsv(out, table);
}

}  // namespace privtopk::data
