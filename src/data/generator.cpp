#include "data/generator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace privtopk::data {

std::vector<PrivateDatabase> generateFleet(const FleetSpec& spec, Rng& rng) {
  if (spec.nodes == 0) throw ConfigError("generateFleet: nodes must be > 0");
  const auto dist = makeDistribution(spec.distribution, spec.domain);

  std::vector<PrivateDatabase> fleet;
  fleet.reserve(spec.nodes);
  for (std::size_t node = 0; node < spec.nodes; ++node) {
    PrivateDatabase db("org-" + std::to_string(node));
    Table table(Schema({{"id", ColumnType::Text},
                        {spec.attribute, ColumnType::Int}}));
    for (std::size_t row = 0; row < spec.rowsPerNode; ++row) {
      table.appendRow({Cell{std::string("r") + std::to_string(node) + "_" +
                            std::to_string(row)},
                       Cell{dist->sample(rng)}});
    }
    db.addTable(spec.tableName, std::move(table));
    fleet.push_back(std::move(db));
  }
  return fleet;
}

std::vector<std::vector<Value>> fleetValues(
    const std::vector<PrivateDatabase>& fleet, const std::string& tableName,
    const std::string& attribute) {
  std::vector<std::vector<Value>> out;
  out.reserve(fleet.size());
  for (const auto& db : fleet) {
    out.push_back(db.table(tableName).intColumn(attribute));
  }
  return out;
}

std::vector<std::vector<Value>> generateValueSets(
    std::size_t nodes, std::size_t valuesPerNode,
    const ValueDistribution& distribution, Rng& rng) {
  std::vector<std::vector<Value>> out;
  out.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    out.push_back(distribution.sampleMany(rng, valuesPerNode));
  }
  return out;
}

TopKVector trueTopK(const std::vector<std::vector<Value>>& sets,
                    std::size_t k) {
  std::vector<Value> all;
  for (const auto& s : sets) all.insert(all.end(), s.begin(), s.end());
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), std::greater<>());
  all.resize(take);
  return all;
}

}  // namespace privtopk::data
