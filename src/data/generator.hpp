// Synthetic dataset generation for experiments and examples: builds a fleet
// of PrivateDatabases whose sensitive attribute follows a chosen
// distribution, mirroring the paper's experiment setup (n nodes, values in
// [1,10000], uniform/normal/zipf).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "data/database.hpp"
#include "data/distribution.hpp"

namespace privtopk::data {

/// Configuration for one synthetic fleet.
struct FleetSpec {
  std::size_t nodes = 4;
  std::size_t rowsPerNode = 100;
  std::string distribution = "uniform";
  Domain domain = kPaperDomain;
  std::string tableName = "sales";
  std::string attribute = "revenue";
};

/// Builds `spec.nodes` databases, each with `spec.rowsPerNode` rows whose
/// `attribute` column is drawn i.i.d. from the distribution.  Each row also
/// carries a text id ("r<node>_<row>") so examples can show realistic
/// schemas.  Deterministic given `rng`.
[[nodiscard]] std::vector<PrivateDatabase> generateFleet(const FleetSpec& spec,
                                                         Rng& rng);

/// Extracts the plain value vectors (one per node) from a fleet - the form
/// the protocol runner consumes.
[[nodiscard]] std::vector<std::vector<Value>> fleetValues(
    const std::vector<PrivateDatabase>& fleet, const std::string& tableName,
    const std::string& attribute);

/// Generates raw per-node value vectors directly (the fast path used by the
/// Monte-Carlo experiment harnesses, which do not need Table scaffolding).
[[nodiscard]] std::vector<std::vector<Value>> generateValueSets(
    std::size_t nodes, std::size_t valuesPerNode,
    const ValueDistribution& distribution, Rng& rng);

/// Reference answer: the true global top-k (descending multiset) across all
/// nodes' values.  Used to score protocol precision.
[[nodiscard]] TopKVector trueTopK(const std::vector<std::vector<Value>>& sets,
                                  std::size_t k);

}  // namespace privtopk::data
