#include "data/distribution.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace privtopk::data {

std::vector<Value> ValueDistribution::sampleMany(Rng& rng,
                                                 std::size_t n) const {
  std::vector<Value> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample(rng));
  return out;
}

NormalDistribution::NormalDistribution(Domain domain,
                                       std::optional<double> mean,
                                       std::optional<double> stddev)
    : domain_(domain),
      mean_(mean.value_or((static_cast<double>(domain.min) +
                           static_cast<double>(domain.max)) /
                          2.0)),
      stddev_(stddev.value_or(
          std::max(1.0, (static_cast<double>(domain.max) -
                         static_cast<double>(domain.min)) /
                            6.0))) {
  if (stddev_ <= 0) throw ConfigError("NormalDistribution: stddev must be > 0");
}

Value NormalDistribution::sample(Rng& rng) const {
  const double draw = rng.normal(mean_, stddev_);
  const auto v = static_cast<Value>(std::llround(draw));
  return std::clamp(v, domain_.min, domain_.max);
}

ZipfDistribution::ZipfDistribution(Domain domain, double exponent)
    : domain_(domain), exponent_(exponent) {
  if (exponent <= 0) throw ConfigError("ZipfDistribution: exponent must be > 0");
  const std::uint64_t n = domain.size();
  if (n > (1u << 24)) {
    throw ConfigError("ZipfDistribution: domain too large for exact CDF");
  }
  cumulative_.reserve(n);
  double total = 0.0;
  for (std::uint64_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), exponent);
    cumulative_.push_back(total);
  }
  for (double& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;  // guard against rounding
}

Value ZipfDistribution::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  const auto rank =
      static_cast<Value>(std::distance(cumulative_.begin(), it));
  return domain_.min + rank;  // rank 0 => most probable => domain.min
}

std::unique_ptr<ValueDistribution> makeDistribution(const std::string& name,
                                                    Domain domain) {
  if (name == "uniform") return std::make_unique<UniformDistribution>(domain);
  if (name == "normal") return std::make_unique<NormalDistribution>(domain);
  if (name == "zipf") return std::make_unique<ZipfDistribution>(domain);
  throw ConfigError("makeDistribution: unknown distribution '" + name + "'");
}

}  // namespace privtopk::data
