// Synthetic attribute-value distributions.
//
// The paper's experiments generate attribute values "randomly ... over the
// integer domain [1,10000]" under uniform, normal and zipf distributions
// (reporting uniform because results were similar).  All three are provided
// so every experiment can be repeated under each.

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace privtopk::data {

/// Abstract generator of attribute values over a fixed integer domain.
class ValueDistribution {
 public:
  virtual ~ValueDistribution() = default;

  /// Draws one value; always within domain().
  [[nodiscard]] virtual Value sample(Rng& rng) const = 0;

  [[nodiscard]] virtual const Domain& domain() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Draws n values.
  [[nodiscard]] std::vector<Value> sampleMany(Rng& rng, std::size_t n) const;
};

/// Uniform over [domain.min, domain.max].
class UniformDistribution final : public ValueDistribution {
 public:
  explicit UniformDistribution(Domain domain = kPaperDomain)
      : domain_(domain) {}

  [[nodiscard]] Value sample(Rng& rng) const override {
    return rng.uniformInt(domain_.min, domain_.max);
  }
  [[nodiscard]] const Domain& domain() const override { return domain_; }
  [[nodiscard]] std::string name() const override { return "uniform"; }

 private:
  Domain domain_;
};

/// Normal with configurable mean/stddev, rounded and clamped to the domain.
/// Omitted mean/stddev centre the bell on the domain midpoint with ~6 sigma
/// across it.  A supplied stddev must be > 0.
class NormalDistribution final : public ValueDistribution {
 public:
  explicit NormalDistribution(Domain domain = kPaperDomain,
                              std::optional<double> mean = std::nullopt,
                              std::optional<double> stddev = std::nullopt);

  [[nodiscard]] Value sample(Rng& rng) const override;
  [[nodiscard]] const Domain& domain() const override { return domain_; }
  [[nodiscard]] std::string name() const override { return "normal"; }

 private:
  Domain domain_;
  double mean_;
  double stddev_;
};

/// Zipf-distributed rank mapped onto the domain: rank 1 (most probable)
/// maps to domain.min, so high values are rare - the interesting case for a
/// top-k query.  Sampling inverts the CDF with a binary search over
/// precomputed cumulative weights (exact, O(log N) per draw).
class ZipfDistribution final : public ValueDistribution {
 public:
  explicit ZipfDistribution(Domain domain = kPaperDomain, double exponent = 1.0);

  [[nodiscard]] Value sample(Rng& rng) const override;
  [[nodiscard]] const Domain& domain() const override { return domain_; }
  [[nodiscard]] std::string name() const override { return "zipf"; }
  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  Domain domain_;
  double exponent_;
  std::vector<double> cumulative_;  // normalized CDF over ranks
};

/// Factory by name ("uniform" | "normal" | "zipf").
[[nodiscard]] std::unique_ptr<ValueDistribution> makeDistribution(
    const std::string& name, Domain domain = kPaperDomain);

}  // namespace privtopk::data
