#include "data/table.hpp"

#include <unordered_set>

namespace privtopk::data {

std::string toString(ColumnType t) {
  switch (t) {
    case ColumnType::Int: return "int";
    case ColumnType::Real: return "real";
    case ColumnType::Text: return "text";
  }
  return "?";
}

Schema::Schema(std::vector<ColumnSpec> columns) : columns_(std::move(columns)) {
  std::unordered_set<std::string> seen;
  for (const auto& c : columns_) {
    if (!seen.insert(c.name).second) {
      throw SchemaError("Schema: duplicate column '" + c.name + "'");
    }
  }
}

std::size_t Schema::indexOf(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  throw SchemaError("Schema: no column named '" + name + "'");
}

bool Schema::has(const std::string& name) const {
  for (const auto& c : columns_) {
    if (c.name == name) return true;
  }
  return false;
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.columnCount());
  for (std::size_t i = 0; i < schema_.columnCount(); ++i) {
    switch (schema_.column(i).type) {
      case ColumnType::Int:
        columns_.emplace_back(std::vector<Value>{});
        break;
      case ColumnType::Real:
        columns_.emplace_back(std::vector<double>{});
        break;
      case ColumnType::Text:
        columns_.emplace_back(std::vector<std::string>{});
        break;
    }
  }
}

void Table::appendRow(const std::vector<Cell>& row) {
  if (row.size() != schema_.columnCount()) {
    throw SchemaError("Table::appendRow: cell count mismatch");
  }
  // Validate all cells before mutating any column so a bad row cannot leave
  // columns with uneven lengths.
  for (std::size_t i = 0; i < row.size(); ++i) {
    const ColumnType want = schema_.column(i).type;
    const bool ok = (want == ColumnType::Int &&
                     std::holds_alternative<Value>(row[i])) ||
                    (want == ColumnType::Real &&
                     std::holds_alternative<double>(row[i])) ||
                    (want == ColumnType::Text &&
                     std::holds_alternative<std::string>(row[i]));
    if (!ok) {
      throw SchemaError("Table::appendRow: type mismatch in column '" +
                        schema_.column(i).name + "'");
    }
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    switch (schema_.column(i).type) {
      case ColumnType::Int:
        std::get<std::vector<Value>>(columns_[i]).push_back(
            std::get<Value>(row[i]));
        break;
      case ColumnType::Real:
        std::get<std::vector<double>>(columns_[i]).push_back(
            std::get<double>(row[i]));
        break;
      case ColumnType::Text:
        std::get<std::vector<std::string>>(columns_[i]).push_back(
            std::get<std::string>(row[i]));
        break;
    }
  }
  ++rowCount_;
}

const std::vector<Value>& Table::intColumn(const std::string& name) const {
  const std::size_t i = schema_.indexOf(name);
  if (schema_.column(i).type != ColumnType::Int) {
    throw SchemaError("Table::intColumn: '" + name + "' is not an int column");
  }
  return std::get<std::vector<Value>>(columns_[i]);
}

const std::vector<double>& Table::realColumn(const std::string& name) const {
  const std::size_t i = schema_.indexOf(name);
  if (schema_.column(i).type != ColumnType::Real) {
    throw SchemaError("Table::realColumn: '" + name +
                      "' is not a real column");
  }
  return std::get<std::vector<double>>(columns_[i]);
}

const std::vector<std::string>& Table::textColumn(
    const std::string& name) const {
  const std::size_t i = schema_.indexOf(name);
  if (schema_.column(i).type != ColumnType::Text) {
    throw SchemaError("Table::textColumn: '" + name +
                      "' is not a text column");
  }
  return std::get<std::vector<std::string>>(columns_[i]);
}

Cell Table::at(std::size_t row, std::size_t col) const {
  if (row >= rowCount_) throw SchemaError("Table::at: row out of range");
  switch (schema_.column(col).type) {
    case ColumnType::Int:
      return std::get<std::vector<Value>>(columns_[col])[row];
    case ColumnType::Real:
      return std::get<std::vector<double>>(columns_[col])[row];
    case ColumnType::Text:
      return std::get<std::vector<std::string>>(columns_[col])[row];
  }
  throw SchemaError("Table::at: bad column type");
}

}  // namespace privtopk::data
