// Privacy-preserving k-nearest-neighbour classification across private
// databases - the paper's §7 future-work item ("we are developing a
// privacy preserving kNN classifier on top of the topk protocol"),
// realized with the library's own primitives:
//
//   1. every party computes distances from the query point to its private
//      training points locally (nothing leaves the party);
//   2. the ring protocol's bottom-k form (top-k on mirrored values) finds
//      the k smallest distances across all parties with the probabilistic
//      privacy guarantees of the paper;
//   3. the kth distance acts as the neighbourhood radius; each party
//      counts its in-radius points per class label, and a decentralized
//      secure sum (protocol/secure_sum.hpp) tallies the votes without
//      revealing per-party counts;
//   4. the label with the most votes wins (ties break to the smaller
//      label, as in the centralized reference implementation).
//
// Distances are squared-Euclidean, quantized to the integer value domain
// with a fixed scale so the private and centralized paths agree exactly.

#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "protocol/params.hpp"

namespace privtopk::knn {

struct LabeledPoint {
  std::vector<double> features;
  int label = 0;
};

struct KnnConfig {
  /// Neighbourhood size.
  std::size_t k = 5;
  /// Quantization: quantized = llround(squaredDistance * scale).
  double scale = 1000.0;
  /// Protocol parameters for the distance-selection phase (k and domain
  /// are overwritten internally).
  protocol::ProtocolParams protocolParams;
};

struct KnnResult {
  int label = 0;
  /// The k smallest quantized distances (ascending) the protocol returned.
  TopKVector neighbourDistances;
  /// Per-label vote totals from the secure sum.
  std::vector<std::int64_t> votes;
};

class PrivateKnnClassifier {
 public:
  /// `partyData[i]` is party i's private training set; >= 3 parties.
  /// `numLabels` is the publicly known label count (labels 0..numLabels-1).
  PrivateKnnClassifier(std::vector<std::vector<LabeledPoint>> partyData,
                       std::size_t numLabels, KnnConfig config = {});

  /// Runs the private protocol end to end.
  [[nodiscard]] KnnResult classify(const std::vector<double>& query,
                                   Rng& rng) const;

  /// Centralized reference (pools all data); for accuracy comparisons.
  [[nodiscard]] int classifyCentralized(const std::vector<double>& query) const;

  [[nodiscard]] std::size_t parties() const { return partyData_.size(); }
  [[nodiscard]] const KnnConfig& config() const { return config_; }

 private:
  [[nodiscard]] Value quantizedDistance(const LabeledPoint& point,
                                        const std::vector<double>& query) const;

  std::vector<std::vector<LabeledPoint>> partyData_;
  std::size_t numLabels_;
  KnnConfig config_;
};

}  // namespace privtopk::knn
