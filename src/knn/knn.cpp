#include "knn/knn.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "protocol/runner.hpp"
#include "protocol/secure_sum.hpp"

namespace privtopk::knn {

PrivateKnnClassifier::PrivateKnnClassifier(
    std::vector<std::vector<LabeledPoint>> partyData, std::size_t numLabels,
    KnnConfig config)
    : partyData_(std::move(partyData)), numLabels_(numLabels),
      config_(std::move(config)) {
  if (partyData_.size() < 3) {
    throw ConfigError("PrivateKnnClassifier: need >= 3 parties");
  }
  if (numLabels_ < 2) {
    throw ConfigError("PrivateKnnClassifier: need >= 2 labels");
  }
  if (config_.k == 0) throw ConfigError("PrivateKnnClassifier: k >= 1");
  if (config_.scale <= 0) throw ConfigError("PrivateKnnClassifier: scale > 0");
  std::size_t total = 0;
  for (const auto& party : partyData_) {
    total += party.size();
    for (const auto& point : party) {
      if (point.label < 0 ||
          static_cast<std::size_t>(point.label) >= numLabels_) {
        throw ConfigError("PrivateKnnClassifier: label out of range");
      }
    }
  }
  if (total < config_.k) {
    throw ConfigError("PrivateKnnClassifier: fewer points than k");
  }
}

Value PrivateKnnClassifier::quantizedDistance(
    const LabeledPoint& point, const std::vector<double>& query) const {
  if (point.features.size() != query.size()) {
    throw ConfigError("PrivateKnnClassifier: dimension mismatch");
  }
  double d2 = 0.0;
  for (std::size_t i = 0; i < query.size(); ++i) {
    const double diff = point.features[i] - query[i];
    d2 += diff * diff;
  }
  return static_cast<Value>(std::llround(d2 * config_.scale));
}

KnnResult PrivateKnnClassifier::classify(const std::vector<double>& query,
                                         Rng& rng) const {
  // Phase 1: local distances (private to each party).
  std::vector<std::vector<Value>> distances(partyData_.size());
  Value maxDistance = 0;
  for (std::size_t p = 0; p < partyData_.size(); ++p) {
    distances[p].reserve(partyData_[p].size());
    for (const auto& point : partyData_[p]) {
      const Value d = quantizedDistance(point, query);
      distances[p].push_back(d);
      maxDistance = std::max(maxDistance, d);
    }
  }

  // Phase 2: k smallest distances via the ring protocol's bottom-k form.
  // The domain bound is public in the paper's model; here we take the
  // observed max (a deployment would agree on a bound from public feature
  // ranges).
  protocol::ProtocolParams params = config_.protocolParams;
  params.k = config_.k;
  params.domain = Domain{0, std::max<Value>(maxDistance, 1)};
  const protocol::RingQueryRunner runner(params,
                                         protocol::ProtocolKind::Probabilistic);
  protocol::RunResult run = runner.runBottomK(distances, rng);

  KnnResult result;
  result.neighbourDistances = run.result;
  const Value radius = run.result.back();  // kth smallest = neighbourhood

  // Phase 3: private vote tally.  Each party counts its in-radius points
  // per label; the secure sum reveals only the totals.
  std::vector<std::vector<std::int64_t>> counters(
      partyData_.size(), std::vector<std::int64_t>(numLabels_, 0));
  for (std::size_t p = 0; p < partyData_.size(); ++p) {
    for (std::size_t idx = 0; idx < partyData_[p].size(); ++idx) {
      if (distances[p][idx] <= radius) {
        ++counters[p][static_cast<std::size_t>(partyData_[p][idx].label)];
      }
    }
  }
  result.votes = protocol::secureSum(counters, rng).totals;

  // Phase 4: majority vote; ties break to the smaller label.
  result.label = static_cast<int>(std::distance(
      result.votes.begin(),
      std::max_element(result.votes.begin(), result.votes.end())));
  return result;
}

int PrivateKnnClassifier::classifyCentralized(
    const std::vector<double>& query) const {
  // Pool all quantized distances, find the same radius, count the same way.
  std::vector<Value> all;
  for (const auto& party : partyData_) {
    for (const auto& point : party) {
      all.push_back(quantizedDistance(point, query));
    }
  }
  std::vector<Value> sorted = all;
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(config_.k - 1),
                   sorted.end());
  const Value radius = sorted[config_.k - 1];

  std::vector<std::int64_t> votes(numLabels_, 0);
  std::size_t idx = 0;
  for (const auto& party : partyData_) {
    for (const auto& point : party) {
      if (all[idx++] <= radius) {
        ++votes[static_cast<std::size_t>(point.label)];
      }
    }
  }
  return static_cast<int>(std::distance(
      votes.begin(), std::max_element(votes.begin(), votes.end())));
}

}  // namespace privtopk::knn
