#include "sim/ring.hpp"

#include <algorithm>
#include <numeric>

namespace privtopk::sim {

bool repairRingOrder(std::vector<NodeId>& order, NodeId failed) {
  const auto it = std::find(order.begin(), order.end(), failed);
  if (it == order.end()) return false;
  if (order.size() <= 1) {
    throw Error("repairRingOrder: cannot remove the last node");
  }
  order.erase(it);
  return true;
}

RingTopology RingTopology::identity(std::size_t n) {
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  return RingTopology(std::move(order));
}

RingTopology RingTopology::random(std::size_t n, Rng& rng) {
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(order);
  return RingTopology(std::move(order));
}

RingTopology::RingTopology(std::vector<NodeId> order)
    : order_(std::move(order)) {
  if (order_.empty()) throw Error("RingTopology: empty ring");
  std::vector<NodeId> sorted = order_;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw Error("RingTopology: duplicate node on ring");
  }
}

std::size_t RingTopology::positionOf(NodeId node) const {
  const auto it = std::find(order_.begin(), order_.end(), node);
  if (it == order_.end()) {
    throw Error("RingTopology: node " + std::to_string(node) +
                " not on ring");
  }
  return static_cast<std::size_t>(std::distance(order_.begin(), it));
}

bool RingTopology::contains(NodeId node) const {
  return std::find(order_.begin(), order_.end(), node) != order_.end();
}

NodeId RingTopology::successor(NodeId node) const {
  const std::size_t pos = positionOf(node);
  return order_[(pos + 1) % order_.size()];
}

NodeId RingTopology::predecessor(NodeId node) const {
  const std::size_t pos = positionOf(node);
  return order_[(pos + order_.size() - 1) % order_.size()];
}

void RingTopology::removeNode(NodeId node) {
  if (order_.size() <= 1) {
    throw Error("RingTopology: cannot remove the last node");
  }
  const std::size_t pos = positionOf(node);
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(pos));
}

}  // namespace privtopk::sim
