// Discrete-event simulator with virtual time.
//
// Events are (time, handler) pairs popped in time order; ties break by
// insertion order so runs are deterministic.  The protocol's simulated
// deployments schedule token deliveries through this queue with latencies
// drawn from a LatencyModel, yielding virtual-time cost figures without
// wall-clock sleeps.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace privtopk::sim {

/// Virtual time in milliseconds.
using SimTime = double;

class EventSimulator {
 public:
  using Handler = std::function<void()>;

  /// Schedules `handler` at absolute virtual time `when` (must be >= now).
  void scheduleAt(SimTime when, Handler handler);

  /// Schedules `handler` `delay` ms after the current virtual time.
  void scheduleAfter(SimTime delay, Handler handler) {
    scheduleAt(now_ + delay, std::move(handler));
  }

  /// Runs the next event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains (or `maxEvents` is hit, guarding against
  /// runaway schedules).
  void run(std::uint64_t maxEvents = 100'000'000);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t processed_ = 0;
};

/// Link latency model.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// One link traversal in virtual ms; must be >= 0.
  [[nodiscard]] virtual SimTime sample(Rng& rng) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Constant latency.
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(SimTime ms) : ms_(ms) {
    if (ms < 0) throw ConfigError("FixedLatency: negative latency");
  }
  [[nodiscard]] SimTime sample(Rng&) const override { return ms_; }
  [[nodiscard]] std::string name() const override { return "fixed"; }

 private:
  SimTime ms_;
};

/// Uniform latency in [lo, hi].
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {
    if (lo < 0 || hi < lo) throw ConfigError("UniformLatency: bad range");
  }
  [[nodiscard]] SimTime sample(Rng& rng) const override {
    return lo_ + (hi_ - lo_) * rng.uniform01();
  }
  [[nodiscard]] std::string name() const override { return "uniform"; }

 private:
  SimTime lo_;
  SimTime hi_;
};

/// Shifted exponential: base propagation delay plus an exponential queueing
/// tail - a common WAN approximation.
class ExponentialLatency final : public LatencyModel {
 public:
  ExponentialLatency(SimTime base, SimTime mean) : base_(base), mean_(mean) {
    if (base < 0 || mean <= 0) throw ConfigError("ExponentialLatency: bad params");
  }
  [[nodiscard]] SimTime sample(Rng& rng) const override {
    return base_ + rng.exponential(mean_);
  }
  [[nodiscard]] std::string name() const override { return "exponential"; }

 private:
  SimTime base_;
  SimTime mean_;
};

}  // namespace privtopk::sim
