#include "sim/event_sim.hpp"

namespace privtopk::sim {

void EventSimulator::scheduleAt(SimTime when, Handler handler) {
  if (when < now_) {
    throw Error("EventSimulator: cannot schedule into the past");
  }
  queue_.push(Event{when, nextSeq_++, std::move(handler)});
}

bool EventSimulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the handler must be moved out
  // before pop, so copy the metadata and steal the handler via const_cast
  // ... avoided: copy the handler instead (cheap relative to event work).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++processed_;
  ev.handler();
  return true;
}

void EventSimulator::run(std::uint64_t maxEvents) {
  std::uint64_t steps = 0;
  while (step()) {
    if (++steps >= maxEvents) {
      throw Error("EventSimulator: event budget exhausted (runaway schedule?)");
    }
  }
}

}  // namespace privtopk::sim
