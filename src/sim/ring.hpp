// Ring topology management.
//
// The protocol runs over a logical ring (paper §3.2).  Nodes are "mapped
// into a ring randomly" to reduce the chance that two colluding adversaries
// sit on both sides of a victim; §4.3 additionally suggests re-mapping the
// ring every round, which the protocol engine supports by constructing a
// fresh random RingTopology per round.  Failure repair follows the paper:
// "the ring can be reconstructed ... simply by connecting the predecessor
// and successor of the failed node".

#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace privtopk::sim {

/// Splices `failed` out of `order` in place, connecting its predecessor and
/// successor (the paper's repair rule).  Returns false when `failed` is not
/// on the ring (already repaired elsewhere); throws Error when removal would
/// empty the ring.  This is the single source of truth for repair semantics:
/// both the simulator's RingTopology and the real-transport NodeService
/// shrink rings through it.
bool repairRingOrder(std::vector<NodeId>& order, NodeId failed);

class RingTopology {
 public:
  /// Ring over nodes 0..n-1 in index order (position i holds node i).
  static RingTopology identity(std::size_t n);

  /// Random permutation ring over nodes 0..n-1.
  static RingTopology random(std::size_t n, Rng& rng);

  /// Ring with an explicit order (order[i] = node at position i).
  explicit RingTopology(std::vector<NodeId> order);

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] const std::vector<NodeId>& order() const { return order_; }

  /// Node at ring position `pos` (0-based; positions wrap).
  [[nodiscard]] NodeId at(std::size_t pos) const {
    return order_[pos % order_.size()];
  }

  /// Ring position of `node`; throws Error if the node is not on the ring.
  [[nodiscard]] std::size_t positionOf(NodeId node) const;

  [[nodiscard]] bool contains(NodeId node) const;

  [[nodiscard]] NodeId successor(NodeId node) const;
  [[nodiscard]] NodeId predecessor(NodeId node) const;

  /// Splices a failed node out of the ring, connecting its predecessor and
  /// successor.  Throws Error when the node is absent or when removal would
  /// empty the ring.
  void removeNode(NodeId node);

 private:
  std::vector<NodeId> order_;
};

}  // namespace privtopk::sim
