// Failure injection for simulated protocol runs.
//
// A FailurePlan declares when each node crashes (fail-stop).  The simulated
// engine consults the plan before delivering a token: a token arriving at a
// failed node is re-routed to the next live successor, modelling the
// paper's repair rule of connecting the failed node's predecessor and
// successor.

#pragma once

#include <map>
#include <optional>

#include "common/types.hpp"
#include "sim/event_sim.hpp"

namespace privtopk::sim {

class FailurePlan {
 public:
  /// Schedules `node` to crash at virtual time `when` (ms).
  void crashAt(NodeId node, SimTime when) { crashes_[node] = when; }

  /// True when `node` is down at time `t`.
  [[nodiscard]] bool isFailed(NodeId node, SimTime t) const {
    const auto it = crashes_.find(node);
    return it != crashes_.end() && t >= it->second;
  }

  /// Crash time for `node`, if scheduled.
  [[nodiscard]] std::optional<SimTime> crashTime(NodeId node) const {
    const auto it = crashes_.find(node);
    if (it == crashes_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] bool empty() const { return crashes_.empty(); }
  [[nodiscard]] std::size_t count() const { return crashes_.size(); }

 private:
  std::map<NodeId, SimTime> crashes_;
};

}  // namespace privtopk::sim
